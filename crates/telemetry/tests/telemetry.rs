//! Integration pins for the telemetry primitives: histogram bucket
//! exactness and quantile error bounds, merge equivalence, saturation,
//! trace-ring wraparound/ordering, and exporter round-trip agreement.

use herqles_telemetry::hist::{bucket_bounds, bucket_index, RELATIVE_ERROR};
use herqles_telemetry::{EventKind, Histogram, MetricValue, Registry, TraceRing};

/// SplitMix64 — the repo's standard deterministic sample stream, inlined so
/// the telemetry crate keeps zero dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn powers_of_two_start_fresh_buckets_exactly() {
    for k in 0..64u32 {
        let v = 1u64 << k;
        let idx = bucket_index(v);
        let (lo, _) = bucket_bounds(idx);
        assert_eq!(lo, v, "2^{k} must be its bucket's exact lower bound");
        if v > 1 {
            let below = bucket_index(v - 1);
            assert_ne!(idx, below, "2^{k} must not share a bucket with 2^{k}-1");
            let (_, hi_below) = bucket_bounds(below);
            assert_eq!(hi_below, v - 1, "bucket below 2^{k} must end at 2^{k}-1");
        }
    }
}

#[test]
fn singleton_quantiles_are_exact_at_powers_of_two() {
    for k in 0..64u32 {
        let h = Histogram::new();
        h.record(1u64 << k);
        for p in [0.0, 0.5, 1.0] {
            assert_eq!(
                h.quantile(p),
                1u64 << k,
                "singleton 2^{k} quantile({p}) must be exact"
            );
        }
    }
}

#[test]
fn quantile_error_is_bounded_by_one_bucket_width() {
    // Seeded sample mix spanning many octaves: uniform within a
    // per-sample random bit width, so low and high magnitudes both occur.
    let mut state = 0x00C0_FFEE_u64;
    let mut samples: Vec<u64> = (0..10_000)
        .map(|_| {
            let width = splitmix64(&mut state) % 40;
            splitmix64(&mut state) & ((1u64 << (width + 1)) - 1)
        })
        .collect();
    let h = Histogram::new();
    for &s in &samples {
        h.record(s);
    }
    samples.sort_unstable();

    for p in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let reference = samples[rank - 1];
        let got = h.quantile(p);
        let (lo, hi) = bucket_bounds(bucket_index(reference));
        let width = hi - lo + 1;
        assert!(
            got.abs_diff(reference) <= width,
            "quantile({p}) = {got}, sorted reference = {reference}, \
             bucket width {width} exceeded"
        );
        // The documented relative-error contract.
        let rel = got.abs_diff(reference) as f64 / reference.max(1) as f64;
        assert!(
            rel <= RELATIVE_ERROR || got.abs_diff(reference) <= 1,
            "quantile({p}) relative error {rel} above {RELATIVE_ERROR}"
        );
    }
}

#[test]
fn recording_saturates_at_u64_max() {
    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX);
    assert_eq!(h.count(), 2);
    assert_eq!(h.max(), u64::MAX);
    assert_eq!(h.min(), u64::MAX);
    assert_eq!(h.sum(), u64::MAX, "sum must saturate, not wrap");
    assert_eq!(h.quantile(1.0), u64::MAX);
    assert_eq!(h.quantile(0.5), u64::MAX, "clamped into [min, max]");
    // A later small value keeps the table consistent.
    h.record(1);
    assert_eq!(h.count(), 3);
    assert_eq!(h.min(), 1);
    assert_eq!(h.quantile(0.0), 1);
}

#[test]
fn merge_equals_interleaved_recording() {
    let mut state = 0xDEAD_BEEF_u64;
    let samples: Vec<u64> = (0..4_096)
        .map(|_| splitmix64(&mut state) % 1_000_000_007)
        .collect();

    let interleaved = Histogram::new();
    for &s in &samples {
        interleaved.record(s);
    }
    // Shard the same stream across two histograms, then merge.
    let a = Histogram::new();
    let b = Histogram::new();
    for (i, &s) in samples.iter().enumerate() {
        if i % 2 == 0 { &a } else { &b }.record(s);
    }
    a.merge(&b);

    assert_eq!(a.count(), interleaved.count());
    assert_eq!(a.sum(), interleaved.sum());
    assert_eq!(a.min(), interleaved.min());
    assert_eq!(a.max(), interleaved.max());
    assert_eq!(
        a.snapshot().bucket_counts(),
        interleaved.snapshot().bucket_counts(),
        "merged bucket table must equal the interleaved one cell-for-cell"
    );
    for p in [0.1, 0.5, 0.99] {
        assert_eq!(a.quantile(p), interleaved.quantile(p));
    }
}

#[test]
fn trace_ring_wraps_keeping_newest_in_order() {
    let ring = TraceRing::new(8);
    assert_eq!(ring.capacity(), 8);
    for i in 0..20u64 {
        ring.record(EventKind::Custom, i);
    }
    assert_eq!(ring.recorded(), 20);
    let events = ring.snapshot();
    assert_eq!(events.len(), 8, "ring keeps exactly the newest capacity");
    // The survivors are the last 8, in ascending sequence order, payloads
    // intact, timestamps non-decreasing.
    for (k, e) in events.iter().enumerate() {
        assert_eq!(e.seq, 12 + k as u64);
        assert_eq!(e.arg, 12 + k as u64);
        assert_eq!(e.kind, EventKind::Custom);
    }
    assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));

    // Reusing the drain buffer does not grow it once warm.
    let mut buf = Vec::with_capacity(8);
    let n = ring.snapshot_into(&mut buf);
    assert_eq!(n, 8);
    let cap = buf.capacity();
    ring.record(EventKind::HotSwap, 99);
    let _ = ring.snapshot_into(&mut buf);
    assert_eq!(buf.capacity(), cap);
    assert_eq!(buf.last().map(|e| e.kind), Some(EventKind::HotSwap));
}

/// Pulls `name{labels...} value`-style sample values back out of both
/// exporter outputs and checks they agree — the round-trip pin: one
/// snapshot, two formats, same numbers.
#[test]
fn exporters_roundtrip_the_same_snapshot() {
    let registry = Registry::new();
    let scope = registry.scope(&[("engine", "e0")]);
    scope
        .counter("cycles_total", "completed cycles", &[])
        .add(41);
    scope.gauge("load_ratio", "load", &[]).set(0.75);
    let h = scope.histogram("stage_latency_ns", "stage latency", &[("stage", "synth")]);
    for v in [1_000u64, 2_000, 3_000, 40_000] {
        h.record(v);
    }

    let snap = registry.snapshot();
    let text = snap.to_prometheus_text();
    let json = snap.to_json();

    // Counter value appears identically in both.
    assert!(text.contains("cycles_total{engine=\"e0\"} 41"));
    assert!(json.contains("\"name\": \"cycles_total\""));
    assert!(json.contains("\"value\": 41"));

    // Gauge.
    assert!(text.contains("load_ratio{engine=\"e0\"} 0.75"));
    assert!(json.contains("\"value\": 0.75"));

    // Histogram summary: count/sum and every quantile agree across formats.
    let summary = snap
        .metrics
        .iter()
        .find_map(|m| match (&m.name[..], &m.value) {
            ("stage_latency_ns", MetricValue::Histogram(s)) => Some(*s),
            _ => None,
        })
        .expect("histogram present in snapshot");
    assert_eq!(summary.count, 4);
    assert_eq!(summary.max, 40_000);
    for (field, v) in [
        ("count", summary.count),
        ("sum", summary.sum),
        ("p50", summary.p50),
        ("p99", summary.p99),
        ("max", summary.max),
    ] {
        assert!(
            json.contains(&format!("\"{field}\": {v}")),
            "JSON lost {field}={v}"
        );
    }
    assert!(text.contains(&format!(
        "stage_latency_ns_count{{engine=\"e0\",stage=\"synth\"}} {}",
        summary.count
    )));
    assert!(text.contains(&format!(
        "stage_latency_ns_sum{{engine=\"e0\",stage=\"synth\"}} {}",
        summary.sum
    )));
    assert!(text.contains(&format!(
        "stage_latency_ns{{engine=\"e0\",stage=\"synth\",quantile=\"0.5\"}} {}",
        summary.p50
    )));
    assert!(text.contains(&format!(
        "stage_latency_ns{{engine=\"e0\",stage=\"synth\",quantile=\"1\"}} {}",
        summary.max
    )));
}

#[test]
fn hot_recording_paths_do_not_allocate_per_call() {
    // Indirect allocation probe (the stream crate owns the hard global
    // pin): record into pre-built structures through many iterations and
    // confirm quantile queries stay O(table) without growth by checking
    // snapshot sizes stay constant.
    let h = Histogram::new();
    let ring = TraceRing::new(32);
    let before = h.snapshot().bucket_counts().len();
    for i in 0..10_000u64 {
        h.record(i * 37 % 1_000_000);
        ring.record(EventKind::Custom, i);
    }
    assert_eq!(h.snapshot().bucket_counts().len(), before);
    assert_eq!(ring.capacity(), 32);
    assert_eq!(h.count(), 10_000);
}
