//! Flight-recorder integration tests: the span/trace rings under real
//! multi-writer contention, and the alert engine's debounce lifecycle
//! against a live registry.
//!
//! The ring stress tests encode a checkable relation into every event's
//! fields (span: `dur = arg + 1`, `ts = arg`; trace: kind determined by
//! `arg`'s parity) so a torn read — a snapshot observing one writer's
//! timestamp with another writer's payload — is detectable as a relation
//! violation, not just a statistical anomaly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use herqles_telemetry::{
    AlertCondition, AlertEngine, AlertRule, AlertState, EventKind, Quantile, Registry, SpanKind,
    SpanRing, TraceRing,
};

const WRITERS: usize = 4;
const PER_WRITER: u64 = 5_000;
/// Per-writer payload stride: writer `w` records args `w*STRIDE..w*STRIDE+N`.
const STRIDE: u64 = 1_000_000;

#[test]
fn span_ring_survives_concurrent_writers_and_snapshots() {
    let ring = Arc::new(SpanRing::new(512));
    let stop = Arc::new(AtomicBool::new(false));

    // A reader hammers snapshot_into while writers race: every returned
    // event must satisfy the field relations and sequences must be
    // strictly increasing within one snapshot.
    let reader = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut buf = Vec::new();
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                ring.snapshot_into(&mut buf);
                let mut prev_seq = None;
                for ev in &buf {
                    assert_eq!(ev.ts_ns, ev.arg, "torn span: ts/arg mismatch");
                    assert_eq!(ev.dur_ns, ev.arg + 1, "torn span: dur/arg mismatch");
                    assert_eq!(
                        u64::from(ev.track),
                        ev.arg / STRIDE,
                        "torn span: track/arg mismatch"
                    );
                    assert_eq!(ev.kind, SpanKind::Task);
                    if let Some(p) = prev_seq {
                        assert!(ev.seq > p, "snapshot seqs must be strictly increasing");
                    }
                    prev_seq = Some(ev.seq);
                }
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let base = w as u64 * STRIDE;
                for i in 0..PER_WRITER {
                    let arg = base + i;
                    ring.record(SpanKind::Task, w as u32, arg, arg + 1, arg);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0, "reader must have taken snapshots");

    // Quiescent state: exactly WRITERS * PER_WRITER events were claimed,
    // the ring holds the newest `capacity` of them, and the loss is
    // accounted by `dropped`.
    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(ring.recorded(), total);
    assert_eq!(ring.dropped(), total - ring.capacity() as u64);
    let final_events = ring.snapshot();
    assert_eq!(final_events.len(), ring.capacity());
    // Newest-kept: every surviving seq is from the final `capacity` claims.
    for ev in &final_events {
        assert!(ev.seq >= total - ring.capacity() as u64);
    }
}

#[test]
fn trace_ring_survives_concurrent_writers_and_snapshots() {
    let ring = Arc::new(TraceRing::new(256));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut buf = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                ring.snapshot_into(&mut buf);
                let mut prev_seq = None;
                for ev in &buf {
                    let want = if ev.arg.is_multiple_of(2) {
                        EventKind::CycleBegin
                    } else {
                        EventKind::CycleEnd
                    };
                    assert_eq!(ev.kind, want, "torn trace event: kind/arg mismatch");
                    if let Some(p) = prev_seq {
                        assert!(ev.seq > p, "snapshot seqs must be strictly increasing");
                    }
                    prev_seq = Some(ev.seq);
                }
            }
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let base = w as u64 * STRIDE;
                for i in 0..PER_WRITER {
                    let arg = base + i;
                    let kind = if arg.is_multiple_of(2) {
                        EventKind::CycleBegin
                    } else {
                        EventKind::CycleEnd
                    };
                    ring.record(kind, arg);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().unwrap();

    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(ring.recorded(), total);
    assert_eq!(ring.dropped(), total - ring.capacity() as u64);
    assert_eq!(ring.snapshot().len(), ring.capacity());
}

/// Full fire → hold → clear lifecycle against a live registry: a p99
/// latency rule with hold/clear debounce and hysteresis, driven by real
/// histogram records rather than synthesized snapshots.
#[test]
fn alert_engine_fires_holds_and_clears_against_live_registry() {
    let registry = Registry::new();
    let hist = registry.histogram("fr_latency_ns", "test latency", &[("stage", "decode")]);
    let rules = vec![AlertRule::new(
        "latency_p99_high",
        "fr_latency_ns",
        AlertCondition::QuantileAbove {
            quantile: Quantile::P99,
            threshold: 1_000.0,
        },
    )
    .with_labels(&[("stage", "decode")])
    .with_hold_evals(2)
    .with_clear_evals(2)
    .with_hysteresis(0.2)];
    let mut engine = AlertEngine::registered(rules, &registry.scope(&[]));

    let state = |e: &AlertEngine| e.statuses()[0].state;

    // Healthy baseline.
    for _ in 0..64 {
        hist.record(100);
    }
    engine.evaluate(&registry.snapshot());
    assert_eq!(state(&engine), AlertState::Ok);

    // Latency regresses: the first breaching eval only arms the rule
    // (hold_evals = 2), the second fires it.
    for _ in 0..512 {
        hist.record(50_000);
    }
    engine.evaluate(&registry.snapshot());
    assert_eq!(state(&engine), AlertState::Pending, "hold debounce");
    assert_eq!(engine.firing(), 0);
    engine.evaluate(&registry.snapshot());
    assert_eq!(state(&engine), AlertState::Firing);
    assert_eq!(engine.firing(), 1);

    // Recovery: flood the histogram back under the *clear* band
    // (threshold × (1 − hysteresis) = 800). Two in-band evals clear it.
    for _ in 0..200_000 {
        hist.record(100);
    }
    engine.evaluate(&registry.snapshot());
    assert_eq!(state(&engine), AlertState::Firing, "clear debounce holds");
    engine.evaluate(&registry.snapshot());
    assert_eq!(state(&engine), AlertState::Ok);

    let status = &engine.statuses()[0];
    assert_eq!((status.fired, status.cleared), (1, 1));

    // The lifecycle was stamped into the alert trace in order.
    let kinds: Vec<_> = engine.trace().snapshot().iter().map(|e| e.kind).collect();
    assert_eq!(kinds, vec![EventKind::AlertFiring, EventKind::AlertCleared]);

    // ...and mirrored into the registered per-rule state gauge.
    let snap = registry.snapshot();
    let gauge = snap
        .metrics
        .iter()
        .find(|m| m.name == "herqles_alert_state")
        .expect("state gauge registered");
    assert_eq!(
        gauge.value,
        herqles_telemetry::MetricValue::Gauge(AlertState::Ok.as_gauge())
    );
}
