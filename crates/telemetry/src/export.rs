//! Exporters: Prometheus text exposition and JSON, both rendering a
//! [`RegistrySnapshot`].
//!
//! Histograms are exported in the Prometheus *summary* shape — quantile
//! sample lines (`0`=min, `0.5`, `0.9`, `0.99`, `1`=max) plus `_sum` and
//! `_count` — because the log-linear bucket table (7k+ buckets) is the
//! wrong granularity for a scrape. The JSON form carries the same scalar
//! summary per metric, so the two exports of one snapshot always agree.

use std::fmt::Write as _;

use crate::registry::{MetricValue, RegistrySnapshot};

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Renders `{k="v",…}` (empty string when there are no labels, including
/// the extras).
fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label(v, &mut out);
        out.push('"');
    }
    out.push('}');
    out
}

/// Escapes a JSON string's contents.
fn escape_json(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders an `f64` the same way in both exporters: integral values print
/// without a fractional part so counters-as-gauges stay readable.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

impl RegistrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers once per family,
    /// `name{labels} value` samples, histograms as summaries (see module
    /// docs).
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for m in &self.metrics {
            if last_family != Some(m.name.as_str()) {
                last_family = Some(m.name.as_str());
                let type_name = match &m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "summary",
                };
                if !m.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", m.name, m.help.replace('\n', " "));
                }
                let _ = writeln!(out, "# TYPE {} {}", m.name, type_name);
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels, &[]), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.name,
                        label_block(&m.labels, &[]),
                        fmt_f64(*v)
                    );
                }
                MetricValue::Histogram(s) => {
                    for (q, v) in [
                        ("0", s.min),
                        ("0.5", s.p50),
                        ("0.9", s.p90),
                        ("0.99", s.p99),
                        ("1", s.max),
                    ] {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            m.name,
                            label_block(&m.labels, &[("quantile", q)]),
                            v
                        );
                    }
                    let lb = label_block(&m.labels, &[]);
                    let _ = writeln!(out, "{}_sum{} {}", m.name, lb, s.sum);
                    let _ = writeln!(out, "{}_count{} {}", m.name, lb, s.count);
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON document:
    /// `{"metrics": [{"name", "labels", "type", …values…}]}` with the same
    /// scalar values as the text exposition.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str("    {\"name\": \"");
            escape_json(&m.name, &mut out);
            out.push_str("\", \"labels\": {");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                escape_json(k, &mut out);
                out.push_str("\": \"");
                escape_json(v, &mut out);
                out.push('"');
            }
            out.push_str("}, ");
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"type\": \"counter\", \"value\": {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\": \"gauge\", \"value\": {}", fmt_f64(*v));
                }
                MetricValue::Histogram(s) => {
                    let _ = write!(
                        out,
                        "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \
                         \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}",
                        s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99
                    );
                }
            }
            out.push('}');
            if i + 1 < self.metrics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn text_exposition_shape() {
        let r = Registry::new();
        r.counter("req_total", "requests", &[("engine", "a")])
            .add(7);
        let h = r.histogram("lat_ns", "latency", &[]);
        h.record(100);
        h.record(200);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{engine=\"a\"} 7"));
        assert!(text.contains("# TYPE lat_ns summary"));
        assert!(text.contains("lat_ns{quantile=\"0.5\"} "));
        assert!(text.contains("lat_ns_sum 300"));
        assert!(text.contains("lat_ns_count 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        let _ = r.counter("x_total", "", &[("k", "a\"b\\c\nd")]);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains(r#"x_total{k="a\"b\\c\nd"} 0"#));
        let json = r.snapshot().to_json();
        assert!(json.contains(r#""k": "a\"b\\c\nd""#));
    }
}
