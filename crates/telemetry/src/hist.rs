//! Fixed-size, allocation-free, log-linear latency histogram.
//!
//! The bucket layout is the HDR-histogram scheme: values below
//! 2^[`SUB_BITS`] get one exact bucket each; every octave `[2^h, 2^(h+1))`
//! above that is subdivided into 2^[`SUB_BITS`] equal linear sub-buckets.
//! Any `u64` therefore maps to one of [`N_BUCKETS`] cells with relative
//! error at most [`RELATIVE_ERROR`] (one sub-bucket width), and the whole
//! table is ~58 KiB of `AtomicU64` — small enough to hold one histogram per
//! stage per engine.
//!
//! Every operation on the hot side ([`Histogram::record`],
//! [`Histogram::merge`], [`Histogram::quantile`]) is lock-free and performs
//! **zero heap allocation**; only [`Histogram::snapshot`] allocates, and it
//! is meant for the control plane. Concurrent recording is allowed from any
//! number of threads (cells are relaxed atomics); quantiles taken during
//! concurrent recording are approximate in the usual monitoring sense.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` linear
/// buckets, bounding relative error at `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 7;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
const SUB_MASK: u64 = SUB_BUCKETS - 1;

/// Worst-case relative bucket error: one sub-bucket width (`2^-7` < 1 %).
pub const RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// Total bucket count covering the full `u64` range: the exact low range
/// plus one sub-divided octave per leading-bit position above it.
pub const N_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// Index of the bucket holding `v`. Total order preserving: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`, and every power of two starts a
/// fresh bucket exactly on its boundary.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let h = 63 - v.leading_zeros(); // highest set bit, ≥ SUB_BITS
        let sub = (v >> (h - SUB_BITS)) & SUB_MASK;
        ((u64::from(h - SUB_BITS + 1)) * SUB_BUCKETS + sub) as usize
    }
}

/// Inclusive `(lowest, highest)` value range of bucket `idx`.
#[inline]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    debug_assert!(idx < N_BUCKETS);
    let octave = idx as u64 / SUB_BUCKETS;
    let sub = idx as u64 & SUB_MASK;
    if octave == 0 {
        (sub, sub)
    } else {
        let lo = (SUB_BUCKETS + sub) << (octave - 1);
        let width = 1u64 << (octave - 1);
        (lo, lo + (width - 1))
    }
}

/// Adds `v` to `cell`, saturating at `u64::MAX` instead of wrapping (sums of
/// nanosecond values can legitimately approach the ceiling).
fn saturating_fetch_add(cell: &AtomicU64, v: u64) {
    if v == 0 {
        return;
    }
    let mut cur = cell.load(Relaxed);
    loop {
        let next = cur.saturating_add(v);
        match cell.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Lock-free log-linear histogram over `u64` values (typically
/// nanoseconds). See the module docs for the bucket layout.
#[derive(Debug)]
pub struct Histogram {
    cells: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram. The one allocation this type ever performs.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            cells: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock- and allocation-free; safe from any
    /// thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of the same value in one shot.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.cells[bucket_index(v)].fetch_add(n, Relaxed);
        self.count.fetch_add(n, Relaxed);
        saturating_fetch_add(&self.sum, v.saturating_mul(n));
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Folds `other` into `self` cell-by-cell. Recording into `self` after
    /// the merge is indistinguishable from having recorded both streams
    /// interleaved into one histogram.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.cells.iter().zip(&other.cells) {
            let v = src.load(Relaxed);
            if v != 0 {
                dst.fetch_add(v, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        saturating_fetch_add(&self.sum, other.sum.load(Relaxed));
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// Resets every cell and register to empty. Not atomic with respect to
    /// concurrent recorders; intended for between-run reuse.
    pub fn clear(&self) {
        for c in &self.cells {
            c.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all recorded values (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Smallest recorded value (exact; `0` when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value (exact; `0` when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The value at quantile `p ∈ [0, 1]`: the lowest bucket whose
    /// cumulative count reaches rank `⌈p·count⌉`, reported as the bucket's
    /// lower bound clamped into `[min, max]`. The clamp makes singleton
    /// distributions exact and bounds the error against a sorted reference
    /// at one bucket width. Allocation-free. Returns `0` on an empty
    /// histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        let mut out = [0u64];
        self.quantiles(&[p], &mut out);
        out[0]
    }

    /// Multi-quantile variant: one pass over the table answers every entry
    /// of `ps` (which must be sorted ascending, each in `[0, 1]`) into
    /// `out`. Allocation-free; this is the hot-path-adjacent form the
    /// engine's per-cycle stats refresh uses.
    ///
    /// # Panics
    ///
    /// Panics if `ps` and `out` lengths differ or `ps` is not sorted
    /// ascending within `[0, 1]`.
    pub fn quantiles(&self, ps: &[f64], out: &mut [u64]) {
        assert_eq!(ps.len(), out.len(), "one output slot per quantile");
        for w in ps.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be sorted ascending");
        }
        if let (Some(first), Some(last)) = (ps.first(), ps.last()) {
            assert!(
                (0.0..=1.0).contains(first) && (0.0..=1.0).contains(last),
                "quantiles must lie in [0, 1]"
            );
        }
        let count = self.count();
        if count == 0 {
            out.fill(0);
            return;
        }
        let min = self.min();
        let max = self.max();
        let rank = |p: f64| -> u64 { ((p * count as f64).ceil() as u64).clamp(1, count) };
        let mut cum = 0u64;
        let mut k = 0usize;
        // Buckets below min are empty by construction: start at min's bucket.
        for idx in bucket_index(min)..N_BUCKETS {
            let c = self.cells[idx].load(Relaxed);
            if c == 0 {
                continue;
            }
            cum += c;
            while k < ps.len() && cum >= rank(ps[k]) {
                out[k] = bucket_bounds(idx).0.clamp(min, max);
                k += 1;
            }
            if k == ps.len() {
                return;
            }
        }
        // Racing recorders can leave count ahead of the cells; report max.
        out[k..].fill(max);
    }

    /// A point-in-time summary (count/sum/min/max/p50/p90/p99).
    /// Allocation-free.
    pub fn summary(&self) -> HistogramSummary {
        let mut q = [0u64; 3];
        self.quantiles(&[0.5, 0.9, 0.99], &mut q);
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: q[0],
            p90: q[1],
            p99: q[2],
        }
    }

    /// A full copy of the bucket table for offline analysis. Allocates (the
    /// control-plane exception).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.cells.iter().map(|c| c.load(Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// A point-in-time scalar summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (exact).
    pub min: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Median estimate (≤ one bucket width off).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean of the recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// An owned copy of a [`Histogram`]'s bucket table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket counts (length [`N_BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Quantile over the frozen table, same semantics as
    /// [`Histogram::quantile`].
    pub fn quantile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile must lie in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bounds(idx).0.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotonic_and_total() {
        let probes = [
            0u64,
            1,
            127,
            128,
            129,
            255,
            256,
            1 << 20,
            (1 << 20) + 12_345,
            u64::MAX - 1,
            u64::MAX,
        ];
        for w in probes.windows(2) {
            assert!(bucket_index(w[0]) <= bucket_index(w[1]));
        }
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn bounds_invert_the_index() {
        for &v in &[0u64, 1, 127, 128, 1000, 65_535, 1 << 30, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
            let width = hi - lo + 1;
            assert!(
                (width as f64) <= RELATIVE_ERROR * lo.max(1) as f64 + 1.0,
                "bucket width {width} too wide at {lo}"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn clear_resets_everything() {
        let h = Histogram::new();
        h.record(42);
        h.record(1 << 40);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        h.record(7);
        assert_eq!(h.quantile(0.5), 7);
    }
}
