//! Causal span tracing: begin-timestamp + duration + track id per event.
//!
//! [`TraceRing`](crate::TraceRing) answers *what happened* (typed point
//! events with one payload word); reconstructing *when exactly, on which
//! lane* needs more: a span carries its begin timestamp, its duration, and
//! a track id (engine stage lane, pool worker id, …) so a flight-recorder
//! export can lay concurrent work out on parallel tracks. [`SpanRing`]
//! keeps the last *capacity* such spans using the same torn-write-safe
//! stamp protocol as the trace ring — recording is one atomic sequence
//! claim plus five relaxed stores, no locks, no allocation — so the
//! streaming engine and the shard pool can stamp every stage and every
//! fan-out task from the zero-alloc hot path.

use std::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};

/// What a [`SpanEvent`] covers. Discriminants are stable (stored as the low
/// half of a packed `u64` inside the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// Readout-trace synthesis for one round (or one pipelined fan-out
    /// window); `arg` = round index within the cycle.
    Synth = 0,
    /// Shot discrimination for one round; `arg` = round index.
    Discriminate = 1,
    /// Syndrome extraction/commit work; `arg` = round index (or cycle index
    /// for the block write-out span).
    Syndrome = 2,
    /// Block decode; `arg` = cycle index.
    Decode = 3,
    /// One whole streaming cycle; `arg` = cycle index.
    Cycle = 4,
    /// One pool fan-out task on a worker; `arg` = task index.
    Task = 5,
    /// Free-form user span; `arg` is caller-defined.
    Custom = 6,
}

impl SpanKind {
    /// Decodes a stored discriminant; `None` for unknown values.
    pub fn from_u64(v: u64) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::Synth,
            1 => SpanKind::Discriminate,
            2 => SpanKind::Syndrome,
            3 => SpanKind::Decode,
            4 => SpanKind::Cycle,
            5 => SpanKind::Task,
            6 => SpanKind::Custom,
            _ => return None,
        })
    }

    /// Stable label for exporters and logs.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Synth => "synth",
            SpanKind::Discriminate => "discriminate",
            SpanKind::Syndrome => "syndrome",
            SpanKind::Decode => "decode",
            SpanKind::Cycle => "cycle",
            SpanKind::Task => "task",
            SpanKind::Custom => "custom",
        }
    }
}

/// One drained span record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Global sequence number (monotonic per ring, starts at 0).
    pub seq: u64,
    /// Track the span belongs to (stage lane, worker id, …). Exporters map
    /// tracks to display threads.
    pub track: u32,
    /// Span type.
    pub kind: SpanKind,
    /// Begin timestamp: monotonic ns since the process
    /// [`epoch`](crate::time::epoch).
    pub ts_ns: u64,
    /// Span duration in ns.
    pub dur_ns: u64,
    /// Span payload (see the [`SpanKind`] variants).
    pub arg: u64,
}

impl SpanEvent {
    /// End timestamp (`ts_ns + dur_ns`, saturating).
    pub fn end_ns(&self) -> u64 {
        self.ts_ns.saturating_add(self.dur_ns)
    }
}

/// A slot's publication stamp while a writer is mid-store.
const IN_PROGRESS: u64 = u64::MAX;

struct Slot {
    /// `seq` of the published span, or [`IN_PROGRESS`].
    stamp: AtomicU64,
    ts_ns: AtomicU64,
    dur_ns: AtomicU64,
    /// `kind as u64 | (track as u64) << 32`.
    meta: AtomicU64,
    arg: AtomicU64,
}

/// Lock-free ring of the last `capacity` [`SpanEvent`]s. Same protocol as
/// [`TraceRing`](crate::TraceRing): a writer claims a sequence with one
/// `fetch_add`, marks the slot [`IN_PROGRESS`], stores the fields relaxed,
/// then publishes the sequence as the stamp; the drain double-checks the
/// stamp around its field reads and skips torn slots.
pub struct SpanRing {
    head: AtomicU64,
    mask: u64,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl SpanRing {
    /// A ring holding the last `capacity` spans (rounded up to a power of
    /// two, minimum 2). The one allocation this type ever performs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring needs at least one slot");
        let cap = capacity.next_power_of_two().max(2);
        SpanRing {
            head: AtomicU64::new(0),
            mask: cap as u64 - 1,
            slots: (0..cap)
                .map(|_| Slot {
                    stamp: AtomicU64::new(IN_PROGRESS),
                    ts_ns: AtomicU64::new(0),
                    dur_ns: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    arg: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans recorded over the ring's lifetime (not just those still
    /// resident).
    pub fn recorded(&self) -> u64 {
        self.head.load(Relaxed)
    }

    /// Spans lost to ring overwrite: everything recorded beyond what the
    /// ring can keep resident. Zero until the ring wraps.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records one span. Lock- and allocation-free; safe from any thread.
    /// The oldest resident span is overwritten once the ring is full.
    /// `ts_ns` is the span's begin timestamp on the
    /// [`now_ns`](crate::time::now_ns) timeline.
    #[inline]
    pub fn record(&self, kind: SpanKind, track: u32, ts_ns: u64, dur_ns: u64, arg: u64) {
        let seq = self.head.fetch_add(1, Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        slot.stamp.store(IN_PROGRESS, Release);
        slot.ts_ns.store(ts_ns, Relaxed);
        slot.dur_ns.store(dur_ns, Relaxed);
        slot.meta
            .store(kind as u64 | (u64::from(track) << 32), Relaxed);
        slot.arg.store(arg, Relaxed);
        slot.stamp.store(seq, Release);
    }

    /// Copies the resident spans, ordered by ascending sequence number,
    /// into `out` (cleared first; capacity is reused across calls, so a
    /// warm caller allocates only on growth). Returns the number of spans
    /// written. Slots caught mid-overwrite by a concurrent recorder are
    /// skipped. Never blocks recorders.
    pub fn snapshot_into(&self, out: &mut Vec<SpanEvent>) -> usize {
        out.clear();
        let head = self.head.load(Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        for seq in start..head {
            let slot = &self.slots[(seq & self.mask) as usize];
            if slot.stamp.load(Acquire) != seq {
                continue; // never written, overwritten, or mid-write
            }
            let ts_ns = slot.ts_ns.load(Relaxed);
            let dur_ns = slot.dur_ns.load(Relaxed);
            let meta = slot.meta.load(Relaxed);
            let arg = slot.arg.load(Relaxed);
            // Re-check the stamp: if a racing writer claimed this slot while
            // we read the fields, the record may be torn — drop it.
            if slot.stamp.load(Acquire) != seq {
                continue;
            }
            let Some(kind) = SpanKind::from_u64(meta & 0xFFFF_FFFF) else {
                continue;
            };
            out.push(SpanEvent {
                seq,
                track: (meta >> 32) as u32,
                kind,
                ts_ns,
                dur_ns,
                arg,
            });
        }
        out.len()
    }

    /// Allocating convenience form of [`SpanRing::snapshot_into`].
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let ring = SpanRing::new(16);
        ring.record(SpanKind::Synth, 0, 100, 40, 0);
        ring.record(SpanKind::Discriminate, 0, 140, 25, 0);
        ring.record(SpanKind::Task, 3, 100, 65, 7);
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].kind, SpanKind::Synth);
        assert_eq!(spans[0].end_ns(), 140);
        assert_eq!(spans[1].ts_ns, 140);
        assert_eq!(spans[2].track, 3);
        assert_eq!(spans[2].arg, 7);
        assert!(spans.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn kind_roundtrips_through_u64() {
        for k in 0..=6u64 {
            let kind = SpanKind::from_u64(k).expect("known discriminant");
            assert_eq!(kind as u64, k);
            assert!(!kind.label().is_empty());
        }
        assert_eq!(SpanKind::from_u64(7), None);
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let ring = SpanRing::new(4);
        for i in 0..10u64 {
            ring.record(SpanKind::Custom, 0, i * 10, 5, i);
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(
            spans.iter().map(|s| s.arg).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn track_packing_survives_extremes() {
        let ring = SpanRing::new(2);
        ring.record(SpanKind::Task, u32::MAX, u64::MAX - 1, 1, u64::MAX);
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].track, u32::MAX);
        assert_eq!(spans[0].kind, SpanKind::Task);
        assert_eq!(spans[0].end_ns(), u64::MAX);
    }
}
