//! Lock-free fixed-capacity event tracing.
//!
//! [`TraceRing`] keeps the last *capacity* typed events in a preallocated
//! ring. Recording is wait-free for practical purposes — one atomic
//! sequence claim plus four relaxed stores — so the streaming engine's hot
//! path can stamp health transitions, hot-swaps and stage spans without
//! locks or allocation. Draining ([`TraceRing::snapshot_into`]) walks the
//! ring outside the hot path and yields events ordered by sequence number;
//! slots being overwritten *while* the drain reads them are detected via
//! their publication stamp and skipped rather than returned torn.

use std::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};

use crate::time::now_ns;

/// What a [`TraceEvent`] describes. The discriminants are stable (stored as
/// `u64` inside the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A streaming cycle started; `arg` = cycle index.
    CycleBegin = 0,
    /// A streaming cycle finished decoding; `arg` = cycle index.
    CycleEnd = 1,
    /// Synthesis-stage span of one cycle; `arg` = duration in ns.
    StageSynth = 2,
    /// Discrimination-stage span of one cycle; `arg` = duration in ns.
    StageDiscriminate = 3,
    /// Syndrome-stage span of one cycle; `arg` = duration in ns.
    StageSyndrome = 4,
    /// Decode-stage span of one cycle; `arg` = duration in ns.
    StageDecode = 5,
    /// The health monitor adopted a new status; `arg` = new status
    /// (0 nominal, 1 degraded, 2 critical).
    HealthTransition = 6,
    /// A recalibrated discriminator was atomically published; `arg` =
    /// lifetime hot-swap count after the swap.
    HotSwap = 7,
    /// A block decode overran its real-time budget; `arg` = cycle index.
    DegradedDecode = 8,
    /// An adaptive discriminator retrained successfully; `arg` = cycle
    /// index.
    RecalTrained = 9,
    /// An adaptive discriminator declined to retrain (e.g. single-class
    /// harvest); `arg` = cycle index.
    RecalDeclined = 10,
    /// Free-form user event; `arg` is caller-defined.
    Custom = 11,
    /// An alert rule transitioned to firing; `arg` = rule index in its
    /// [`AlertEngine`](crate::alert::AlertEngine).
    AlertFiring = 12,
    /// A firing alert rule cleared; `arg` = rule index.
    AlertCleared = 13,
}

impl EventKind {
    /// Decodes a stored discriminant; `None` for unknown values.
    pub fn from_u64(v: u64) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::CycleBegin,
            1 => EventKind::CycleEnd,
            2 => EventKind::StageSynth,
            3 => EventKind::StageDiscriminate,
            4 => EventKind::StageSyndrome,
            5 => EventKind::StageDecode,
            6 => EventKind::HealthTransition,
            7 => EventKind::HotSwap,
            8 => EventKind::DegradedDecode,
            9 => EventKind::RecalTrained,
            10 => EventKind::RecalDeclined,
            11 => EventKind::Custom,
            12 => EventKind::AlertFiring,
            13 => EventKind::AlertCleared,
            _ => return None,
        })
    }

    /// Stable label for exporters and logs.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::CycleBegin => "cycle_begin",
            EventKind::CycleEnd => "cycle_end",
            EventKind::StageSynth => "stage_synth",
            EventKind::StageDiscriminate => "stage_discriminate",
            EventKind::StageSyndrome => "stage_syndrome",
            EventKind::StageDecode => "stage_decode",
            EventKind::HealthTransition => "health_transition",
            EventKind::HotSwap => "hot_swap",
            EventKind::DegradedDecode => "degraded_decode",
            EventKind::RecalTrained => "recal_trained",
            EventKind::RecalDeclined => "recal_declined",
            EventKind::Custom => "custom",
            EventKind::AlertFiring => "alert_firing",
            EventKind::AlertCleared => "alert_cleared",
        }
    }
}

/// One drained trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (monotonic per ring, starts at 0).
    pub seq: u64,
    /// Monotonic timestamp ([`now_ns`]) at record time.
    pub ts_ns: u64,
    /// Event type.
    pub kind: EventKind,
    /// Event payload (see the [`EventKind`] variants).
    pub arg: u64,
}

/// A slot's publication stamp while a writer is mid-store.
const IN_PROGRESS: u64 = u64::MAX;

struct Slot {
    /// `seq` of the published event, or [`IN_PROGRESS`].
    stamp: AtomicU64,
    ts_ns: AtomicU64,
    kind: AtomicU64,
    arg: AtomicU64,
}

/// Lock-free ring of the last `capacity` [`TraceEvent`]s. See the module
/// docs for the protocol.
pub struct TraceRing {
    head: AtomicU64,
    mask: u64,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl TraceRing {
    /// A ring holding the last `capacity` events (rounded up to a power of
    /// two, minimum 2). The one allocation this type ever performs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs at least one slot");
        let cap = capacity.next_power_of_two().max(2);
        TraceRing {
            head: AtomicU64::new(0),
            mask: cap as u64 - 1,
            slots: (0..cap)
                .map(|_| Slot {
                    // Pre-stamp with a sequence no event can have, so the
                    // drain skips never-written slots.
                    stamp: AtomicU64::new(IN_PROGRESS),
                    ts_ns: AtomicU64::new(0),
                    kind: AtomicU64::new(0),
                    arg: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the ring's lifetime (not just those still
    /// resident).
    pub fn recorded(&self) -> u64 {
        self.head.load(Relaxed)
    }

    /// Events lost to ring overwrite: everything recorded beyond what the
    /// ring can keep resident. Zero until the ring wraps.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records one event. Lock- and allocation-free; safe from any thread.
    /// The oldest resident event is overwritten once the ring is full.
    #[inline]
    pub fn record(&self, kind: EventKind, arg: u64) {
        let seq = self.head.fetch_add(1, Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        slot.stamp.store(IN_PROGRESS, Release);
        slot.ts_ns.store(now_ns(), Relaxed);
        slot.kind.store(kind as u64, Relaxed);
        slot.arg.store(arg, Relaxed);
        slot.stamp.store(seq, Release);
    }

    /// Copies the resident events, ordered by ascending sequence number,
    /// into `out` (cleared first; capacity is reused across calls, so a
    /// warm caller allocates only on growth). Returns the number of events
    /// written. Slots caught mid-overwrite by a concurrent recorder are
    /// skipped. Never blocks recorders.
    pub fn snapshot_into(&self, out: &mut Vec<TraceEvent>) -> usize {
        out.clear();
        let head = self.head.load(Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        for seq in start..head {
            let slot = &self.slots[(seq & self.mask) as usize];
            if slot.stamp.load(Acquire) != seq {
                continue; // never written, overwritten, or mid-write
            }
            let ts_ns = slot.ts_ns.load(Relaxed);
            let kind = slot.kind.load(Relaxed);
            let arg = slot.arg.load(Relaxed);
            // Re-check the stamp: if a racing writer claimed this slot while
            // we read the fields, the record may be torn — drop it.
            if slot.stamp.load(Acquire) != seq {
                continue;
            }
            let Some(kind) = EventKind::from_u64(kind) else {
                continue;
            };
            out.push(TraceEvent {
                seq,
                ts_ns,
                kind,
                arg,
            });
        }
        out.len()
    }

    /// Allocating convenience form of [`TraceRing::snapshot_into`].
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let ring = TraceRing::new(16);
        ring.record(EventKind::CycleBegin, 0);
        ring.record(EventKind::StageSynth, 123);
        ring.record(EventKind::CycleEnd, 0);
        let events = ring.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::CycleBegin);
        assert_eq!(events[1].arg, 123);
        assert_eq!(events[2].kind, EventKind::CycleEnd);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn kind_roundtrips_through_u64() {
        for k in 0..=13u64 {
            let kind = EventKind::from_u64(k).expect("known discriminant");
            assert_eq!(kind as u64, k);
            assert!(!kind.label().is_empty());
        }
        assert_eq!(EventKind::from_u64(14), None);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let ring = std::sync::Arc::new(TraceRing::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let ring = ring.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        ring.record(EventKind::Custom, t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 400);
        let events = ring.snapshot();
        assert!(events.len() <= 64);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
