//! # herqles-telemetry — allocation-free observability primitives
//!
//! The streaming QEC engine's hot path must not allocate, lock, or block —
//! yet a production readout service needs to *see* its own latency
//! distribution and event history. This crate provides the observation layer
//! under that constraint:
//!
//! * [`Histogram`] — a fixed-size, log-linear-bucketed latency histogram in
//!   the HDR style: every `u64` value maps to one of [`hist::N_BUCKETS`]
//!   atomic cells with ≤ [`hist::RELATIVE_ERROR`] relative error.
//!   [`Histogram::record`] is a handful of relaxed atomic operations — no
//!   locks, no allocation — and [`Histogram::quantile`] /
//!   [`Histogram::quantiles`] answer p50/p90/p99/max without allocating
//!   either. [`Histogram::merge`] folds shards together;
//!   [`Histogram::snapshot`] takes a consistent-enough copy for offline
//!   analysis.
//! * [`TraceRing`] — a lock-free fixed-capacity ring of typed
//!   [`TraceEvent`]s (cycle begin/end, stage spans, health transitions,
//!   hot-swaps, …) with monotonic-clock timestamps and sequence numbers.
//!   [`TraceRing::record`] never blocks the hot path;
//!   [`TraceRing::snapshot_into`] drains an ordered snapshot off it.
//! * [`Registry`] — named counters/gauges/histograms with label sets.
//!   Registration (setup time) allocates; the returned [`Counter`],
//!   [`Gauge`] and [`Histogram`] handles are `Arc`s recorded into without
//!   ever touching the registry again. [`Registry::scope`] pins a label set
//!   (e.g. `engine="d5-f32-t4"`) — the seam a multi-tenant fleet hangs
//!   per-tenant views on.
//! * [`SpanRing`] — the flight-recorder companion to the trace ring: each
//!   [`SpanEvent`] carries a begin timestamp, duration and *track id*
//!   (stage lane, pool worker, …) under the same torn-write-safe stamp
//!   protocol, so causal timelines can be reconstructed exactly.
//! * [`ChromeTrace`] — renders span/trace snapshots as Chrome Trace Event
//!   Format JSON (`"X"` complete events, `"M"` track metadata) loadable in
//!   Perfetto or `chrome://tracing`.
//! * [`AlertEngine`] — declarative [`AlertRule`]s (quantile threshold,
//!   counter rate, gauge bound) evaluated over successive
//!   [`RegistrySnapshot`]s with hold/hysteresis debounce, firing typed
//!   trace events and per-rule state gauges.
//! * Exporters — [`RegistrySnapshot::to_prometheus_text`] (text exposition
//!   format) and [`RegistrySnapshot::to_json`] render the *same* snapshot,
//!   so the two views can never disagree.
//! * [`time`] — the one shared timing vocabulary: saturating
//!   [`time::duration_ns`], a process-global monotonic [`time::now_ns`],
//!   and the reusable [`StageTimer`] lap timer.
//!
//! The crate has no dependencies and uses only `std`.
//!
//! # Example
//!
//! ```
//! use herqles_telemetry::{Histogram, Registry};
//!
//! let registry = Registry::new();
//! let scope = registry.scope(&[("engine", "a")]);
//! let hist = scope.histogram("req_latency_ns", "request latency", &[]);
//! for v in [120u64, 140, 135, 90_000] {
//!     hist.record(v); // lock- and allocation-free
//! }
//! assert!(hist.quantile(0.5) >= 120 && hist.quantile(0.5) <= 141);
//! assert_eq!(hist.max(), 90_000);
//! let text = registry.snapshot().to_prometheus_text();
//! assert!(text.contains("req_latency_ns_count{engine=\"a\"} 4"));
//! ```

pub mod alert;
pub mod chrome;
pub mod export;
pub mod hist;
pub mod registry;
pub mod span;
pub mod time;
pub mod trace;

pub use alert::{AlertCondition, AlertEngine, AlertRule, AlertState, Quantile, RuleStatus};
pub use chrome::ChromeTrace;
pub use hist::{Histogram, HistogramSnapshot, HistogramSummary};
pub use registry::{Counter, Gauge, MetricValue, Registry, RegistrySnapshot, Scope};
pub use span::{SpanEvent, SpanKind, SpanRing};
pub use time::{duration_ns, now_ns, StageTimer};
pub use trace::{EventKind, TraceEvent, TraceRing};
