//! Declarative SLO alerting over registry snapshots.
//!
//! An [`AlertRule`] names a metric, a condition (histogram-quantile
//! threshold, counter rate, gauge bound) and a debounce policy; an
//! [`AlertEngine`] evaluates its rules against successive
//! [`RegistrySnapshot`]s. The state machine mirrors the streaming
//! engine's health monitor: a rule must breach for `hold_evals`
//! consecutive evaluations before it fires (transient spikes don't page),
//! and once firing it must sit below the hysteresis band for
//! `clear_evals` consecutive evaluations before it clears (no
//! flapping at the threshold). Transitions stamp typed
//! [`AlertFiring`](EventKind::AlertFiring) /
//! [`AlertCleared`](EventKind::AlertCleared) events into a trace ring, and
//! each rule can publish its state as a registered gauge
//! (`0` ok, `1` pending, `2` firing).
//!
//! Evaluation is control-plane code (runs at scrape cadence, not in the
//! cycle hot path) and is allocation-light rather than allocation-free.

use crate::hist::HistogramSummary;
use crate::registry::{Gauge, MetricSnapshot, MetricValue, RegistrySnapshot, Scope};
use crate::trace::{EventKind, TraceRing};
use std::sync::Arc;

/// Which scalar of a histogram summary a quantile rule reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantile {
    /// Smallest recorded value.
    Min,
    /// Median.
    P50,
    /// 90th percentile.
    P90,
    /// 99th percentile.
    P99,
    /// Largest recorded value.
    Max,
}

impl Quantile {
    fn read(self, s: &HistogramSummary) -> f64 {
        (match self {
            Quantile::Min => s.min,
            Quantile::P50 => s.p50,
            Quantile::P90 => s.p90,
            Quantile::P99 => s.p99,
            Quantile::Max => s.max,
        }) as f64
    }

    /// Stable label for summaries.
    pub fn label(self) -> &'static str {
        match self {
            Quantile::Min => "min",
            Quantile::P50 => "p50",
            Quantile::P90 => "p90",
            Quantile::P99 => "p99",
            Quantile::Max => "max",
        }
    }
}

/// What makes a rule breach.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlertCondition {
    /// A histogram quantile exceeds `threshold`. Clears once the quantile
    /// drops to `threshold × (1 − hysteresis)` or below.
    QuantileAbove {
        /// Summary scalar to read.
        quantile: Quantile,
        /// Breach bound (same unit as the histogram, e.g. ns).
        threshold: f64,
    },
    /// A counter grows by more than `per_eval` between two consecutive
    /// evaluations. The first evaluation only establishes the baseline.
    /// Clears once the per-evaluation rate drops to
    /// `per_eval × (1 − hysteresis)` or below.
    RateAbove {
        /// Maximum tolerated counter delta per evaluation.
        per_eval: f64,
    },
    /// A gauge exceeds `threshold`; clears at `threshold × (1 − hysteresis)`.
    GaugeAbove {
        /// Breach bound.
        threshold: f64,
    },
    /// A gauge drops below `threshold`; clears at
    /// `threshold × (1 + hysteresis)`.
    GaugeBelow {
        /// Breach bound.
        threshold: f64,
    },
}

/// One declarative alert: metric selector + condition + debounce policy.
#[derive(Debug, Clone)]
pub struct AlertRule {
    /// Rule name (also the `rule` label on the state gauge). Must be unique
    /// within one engine.
    pub name: String,
    /// Metric family name to match in the snapshot.
    pub metric: String,
    /// Label subset the metric series must carry. Empty matches every
    /// series of the family; with several matches the *worst-case* value is
    /// evaluated (max for `*Above`, min for `GaugeBelow`, summed deltas for
    /// `RateAbove`).
    pub labels: Vec<(String, String)>,
    /// Breach condition.
    pub condition: AlertCondition,
    /// Consecutive breaching evaluations before the rule fires (≥ 1).
    pub hold_evals: u32,
    /// Consecutive in-band evaluations before a firing rule clears (≥ 1).
    pub clear_evals: u32,
    /// Relative hysteresis band applied in the clearing direction only
    /// (`0.1` = must recover 10 % past the threshold to clear).
    pub hysteresis: f64,
}

impl AlertRule {
    /// A rule with no extra labels, single-evaluation debounce and a 10 %
    /// hysteresis band; builder-style setters refine it.
    #[must_use]
    pub fn new(name: &str, metric: &str, condition: AlertCondition) -> Self {
        AlertRule {
            name: name.to_string(),
            metric: metric.to_string(),
            labels: Vec::new(),
            condition,
            hold_evals: 1,
            clear_evals: 1,
            hysteresis: 0.1,
        }
    }

    /// Requires the metric series to carry `labels` (subset match).
    #[must_use]
    pub fn with_labels(mut self, labels: &[(&str, &str)]) -> Self {
        self.labels = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        self
    }

    /// Sets the fire debounce (clamped to ≥ 1).
    #[must_use]
    pub fn with_hold_evals(mut self, hold: u32) -> Self {
        self.hold_evals = hold.max(1);
        self
    }

    /// Sets the clear debounce (clamped to ≥ 1).
    #[must_use]
    pub fn with_clear_evals(mut self, clear: u32) -> Self {
        self.clear_evals = clear.max(1);
        self
    }

    /// Sets the hysteresis band.
    #[must_use]
    pub fn with_hysteresis(mut self, h: f64) -> Self {
        self.hysteresis = h.max(0.0);
        self
    }

    fn matches(&self, m: &MetricSnapshot) -> bool {
        m.name == self.metric
            && self
                .labels
                .iter()
                .all(|want| m.labels.iter().any(|have| have == want))
    }
}

/// A rule's debounced state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// In band.
    Ok,
    /// Breaching, but not yet for `hold_evals` evaluations.
    Pending,
    /// Fired and not yet cleared.
    Firing,
}

impl AlertState {
    /// Gauge encoding (`0` ok, `1` pending, `2` firing).
    pub fn as_gauge(self) -> f64 {
        match self {
            AlertState::Ok => 0.0,
            AlertState::Pending => 1.0,
            AlertState::Firing => 2.0,
        }
    }

    /// Stable label for summaries.
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// Live per-rule evaluation state.
#[derive(Debug)]
struct RuleState {
    rule: AlertRule,
    state: AlertState,
    pending: u32,
    clearing: u32,
    prev_counter: Option<f64>,
    fired: u64,
    cleared: u64,
    last_value: Option<f64>,
    gauge: Option<Arc<Gauge>>,
}

/// A frozen view of one rule's state for summaries/JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStatus {
    /// Rule name.
    pub name: String,
    /// Current debounced state.
    pub state: AlertState,
    /// Lifetime fire transitions.
    pub fired: u64,
    /// Lifetime clear transitions.
    pub cleared: u64,
    /// Most recent evaluated value (`None` until the metric is seen; for
    /// rate rules, the per-evaluation delta).
    pub last_value: Option<f64>,
}

/// Evaluates a fixed rule set against successive registry snapshots. See
/// the module docs for the debounce semantics.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<RuleState>,
    trace: TraceRing,
    evaluations: u64,
}

/// Trace-ring capacity for alert transitions: alerts are rare events, a
/// small ring keeps plenty of history.
const ALERT_TRACE_CAPACITY: usize = 256;

impl AlertEngine {
    /// An engine over `rules` with unregistered state (no gauges).
    ///
    /// # Panics
    ///
    /// Panics if two rules share a name.
    #[must_use]
    pub fn new(rules: Vec<AlertRule>) -> Self {
        Self::build(rules, None)
    }

    /// An engine whose per-rule state gauges
    /// (`herqles_alert_state{rule="..."}`) are registered through `scope`.
    #[must_use]
    pub fn registered(rules: Vec<AlertRule>, scope: &Scope<'_>) -> Self {
        Self::build(rules, Some(scope))
    }

    fn build(rules: Vec<AlertRule>, scope: Option<&Scope<'_>>) -> Self {
        for (i, a) in rules.iter().enumerate() {
            assert!(
                rules[..i].iter().all(|b| b.name != a.name),
                "duplicate alert rule name {:?}",
                a.name
            );
        }
        let rules = rules
            .into_iter()
            .map(|rule| {
                let gauge = scope.map(|s| {
                    s.gauge(
                        "herqles_alert_state",
                        "alert rule state (0 ok, 1 pending, 2 firing)",
                        &[("rule", rule.name.as_str())],
                    )
                });
                RuleState {
                    rule,
                    state: AlertState::Ok,
                    pending: 0,
                    clearing: 0,
                    prev_counter: None,
                    fired: 0,
                    cleared: 0,
                    last_value: None,
                    gauge,
                }
            })
            .collect();
        AlertEngine {
            rules,
            trace: TraceRing::new(ALERT_TRACE_CAPACITY),
            evaluations: 0,
        }
    }

    /// Evaluates every rule against `snapshot`. Returns the number of
    /// state *transitions* (fire + clear) this evaluation produced.
    pub fn evaluate(&mut self, snapshot: &RegistrySnapshot) -> usize {
        self.evaluations += 1;
        let mut transitions = 0;
        for (idx, rs) in self.rules.iter_mut().enumerate() {
            let Some(value) = observe(&rs.rule, snapshot, &mut rs.prev_counter) else {
                continue; // metric absent (or rate baseline): no state change
            };
            rs.last_value = Some(value);
            let breach = breaches(&rs.rule.condition, value);
            let in_clear_band = clears(&rs.rule.condition, rs.rule.hysteresis, value);
            match rs.state {
                AlertState::Ok | AlertState::Pending => {
                    if breach {
                        rs.pending += 1;
                        if rs.pending >= rs.rule.hold_evals {
                            rs.state = AlertState::Firing;
                            rs.pending = 0;
                            rs.clearing = 0;
                            rs.fired += 1;
                            self.trace.record(EventKind::AlertFiring, idx as u64);
                            transitions += 1;
                        } else {
                            rs.state = AlertState::Pending;
                        }
                    } else {
                        rs.state = AlertState::Ok;
                        rs.pending = 0;
                    }
                }
                AlertState::Firing => {
                    if in_clear_band {
                        rs.clearing += 1;
                        if rs.clearing >= rs.rule.clear_evals {
                            rs.state = AlertState::Ok;
                            rs.clearing = 0;
                            rs.cleared += 1;
                            self.trace.record(EventKind::AlertCleared, idx as u64);
                            transitions += 1;
                        }
                    } else {
                        // Still breaching — or inside the hysteresis gap:
                        // either way the clear streak restarts.
                        rs.clearing = 0;
                    }
                }
            }
            if let Some(g) = &rs.gauge {
                g.set(rs.state.as_gauge());
            }
        }
        transitions
    }

    /// Evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// The trace ring alert transitions are stamped into
    /// ([`EventKind::AlertFiring`] / [`EventKind::AlertCleared`]; `arg` =
    /// rule index).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Rules currently in [`AlertState::Firing`].
    pub fn firing(&self) -> usize {
        self.rules
            .iter()
            .filter(|r| r.state == AlertState::Firing)
            .count()
    }

    /// Frozen per-rule statuses, in rule order.
    #[must_use]
    pub fn statuses(&self) -> Vec<RuleStatus> {
        self.rules
            .iter()
            .map(|rs| RuleStatus {
                name: rs.rule.name.clone(),
                state: rs.state,
                fired: rs.fired,
                cleared: rs.cleared,
                last_value: rs.last_value,
            })
            .collect()
    }
}

/// Reads the rule's worst-case value out of the snapshot. `None` when no
/// series matches — or, for rate rules, on the baseline-establishing first
/// sight of the counter.
fn observe(
    rule: &AlertRule,
    snapshot: &RegistrySnapshot,
    prev_counter: &mut Option<f64>,
) -> Option<f64> {
    let matched = snapshot.metrics.iter().filter(|m| rule.matches(m));
    match rule.condition {
        AlertCondition::QuantileAbove { quantile, .. } => matched
            .filter_map(|m| match &m.value {
                MetricValue::Histogram(s) if s.count > 0 => Some(quantile.read(s)),
                _ => None,
            })
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            }),
        AlertCondition::RateAbove { .. } => {
            let total: f64 = matched
                .filter_map(|m| match &m.value {
                    MetricValue::Counter(c) => Some(*c as f64),
                    _ => None,
                })
                .sum();
            let prev = prev_counter.replace(total);
            // A shrinking total (counter reset / series churn) re-baselines.
            prev.filter(|p| *p <= total).map(|p| total - p)
        }
        AlertCondition::GaugeAbove { .. } => matched
            .filter_map(|m| match &m.value {
                MetricValue::Gauge(g) => Some(*g),
                _ => None,
            })
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            }),
        AlertCondition::GaugeBelow { .. } => matched
            .filter_map(|m| match &m.value {
                MetricValue::Gauge(g) => Some(*g),
                _ => None,
            })
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            }),
    }
}

fn breaches(cond: &AlertCondition, value: f64) -> bool {
    match *cond {
        AlertCondition::QuantileAbove { threshold, .. }
        | AlertCondition::GaugeAbove { threshold } => value > threshold,
        AlertCondition::RateAbove { per_eval } => value > per_eval,
        AlertCondition::GaugeBelow { threshold } => value < threshold,
    }
}

/// Whether `value` sits inside the *clear* band — past the threshold by
/// the hysteresis margin, in the recovery direction.
fn clears(cond: &AlertCondition, hysteresis: f64, value: f64) -> bool {
    match *cond {
        AlertCondition::QuantileAbove { threshold, .. }
        | AlertCondition::GaugeAbove { threshold } => value <= threshold * (1.0 - hysteresis),
        AlertCondition::RateAbove { per_eval } => value <= per_eval * (1.0 - hysteresis),
        AlertCondition::GaugeBelow { threshold } => value >= threshold * (1.0 + hysteresis),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn snapshot_with_gauge(r: &Registry, v: f64) -> RegistrySnapshot {
        r.gauge("g", "", &[]).set(v);
        r.snapshot()
    }

    #[test]
    fn gauge_rule_fires_after_hold_and_clears_after_hysteresis() {
        let r = Registry::new();
        let rule = AlertRule::new("hot", "g", AlertCondition::GaugeAbove { threshold: 100.0 })
            .with_hold_evals(2)
            .with_clear_evals(2)
            .with_hysteresis(0.1);
        let mut engine = AlertEngine::new(vec![rule]);

        assert_eq!(engine.evaluate(&snapshot_with_gauge(&r, 50.0)), 0);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);

        // First breach: pending, not firing.
        assert_eq!(engine.evaluate(&snapshot_with_gauge(&r, 150.0)), 0);
        assert_eq!(engine.statuses()[0].state, AlertState::Pending);
        // Second consecutive breach: fires.
        assert_eq!(engine.evaluate(&snapshot_with_gauge(&r, 150.0)), 1);
        assert_eq!(engine.statuses()[0].state, AlertState::Firing);
        assert_eq!(engine.firing(), 1);

        // 95 is below the threshold but inside the hysteresis gap
        // (> 90 = 100×0.9): must NOT count toward clearing.
        assert_eq!(engine.evaluate(&snapshot_with_gauge(&r, 95.0)), 0);
        assert_eq!(engine.statuses()[0].state, AlertState::Firing);
        // Two in-band evaluations clear it.
        assert_eq!(engine.evaluate(&snapshot_with_gauge(&r, 80.0)), 0);
        assert_eq!(engine.evaluate(&snapshot_with_gauge(&r, 80.0)), 1);
        let s = &engine.statuses()[0];
        assert_eq!(s.state, AlertState::Ok);
        assert_eq!(s.fired, 1);
        assert_eq!(s.cleared, 1);

        // The transitions are on the trace ring, in order.
        let events = engine.trace().snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::AlertFiring);
        assert_eq!(events[1].kind, EventKind::AlertCleared);
    }

    #[test]
    fn pending_streak_resets_on_recovery() {
        let r = Registry::new();
        let rule = AlertRule::new("hot", "g", AlertCondition::GaugeAbove { threshold: 1.0 })
            .with_hold_evals(3);
        let mut engine = AlertEngine::new(vec![rule]);
        engine.evaluate(&snapshot_with_gauge(&r, 2.0));
        engine.evaluate(&snapshot_with_gauge(&r, 2.0));
        engine.evaluate(&snapshot_with_gauge(&r, 0.0)); // streak broken
        engine.evaluate(&snapshot_with_gauge(&r, 2.0));
        engine.evaluate(&snapshot_with_gauge(&r, 2.0));
        assert_eq!(engine.statuses()[0].state, AlertState::Pending);
        assert_eq!(engine.statuses()[0].fired, 0);
    }

    #[test]
    fn rate_rule_baselines_then_tracks_deltas() {
        let r = Registry::new();
        let c = r.counter("errors_total", "", &[]);
        let rule = AlertRule::new(
            "errors",
            "errors_total",
            AlertCondition::RateAbove { per_eval: 2.0 },
        );
        let mut engine = AlertEngine::new(vec![rule]);

        c.add(100);
        engine.evaluate(&r.snapshot()); // baseline only
        assert_eq!(engine.statuses()[0].last_value, None);

        c.add(5); // delta 5 > 2 → fires (hold 1)
        assert_eq!(engine.evaluate(&r.snapshot()), 1);
        assert_eq!(engine.statuses()[0].state, AlertState::Firing);
        assert_eq!(engine.statuses()[0].last_value, Some(5.0));

        c.add(1); // delta 1 ≤ 1.8 → clears (clear 1)
        assert_eq!(engine.evaluate(&r.snapshot()), 1);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
    }

    #[test]
    fn quantile_rule_reads_worst_matching_series() {
        let r = Registry::new();
        let fast = r.histogram("lat_ns", "", &[("engine", "a")]);
        let slow = r.histogram("lat_ns", "", &[("engine", "b")]);
        for _ in 0..100 {
            fast.record(10);
            slow.record(10_000);
        }
        let rule = AlertRule::new(
            "lat",
            "lat_ns",
            AlertCondition::QuantileAbove {
                quantile: Quantile::P99,
                threshold: 1_000.0,
            },
        );
        let mut engine = AlertEngine::new(vec![rule]);
        assert_eq!(engine.evaluate(&r.snapshot()), 1, "worst series breaches");

        // Narrowing the label selector to the fast engine stays quiet.
        let scoped = AlertRule::new(
            "lat_a",
            "lat_ns",
            AlertCondition::QuantileAbove {
                quantile: Quantile::P99,
                threshold: 1_000.0,
            },
        )
        .with_labels(&[("engine", "a")]);
        let mut engine = AlertEngine::new(vec![scoped]);
        assert_eq!(engine.evaluate(&r.snapshot()), 0);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
    }

    #[test]
    fn missing_metric_holds_state() {
        let r = Registry::new();
        let rule = AlertRule::new(
            "ghost",
            "nope",
            AlertCondition::GaugeAbove { threshold: 1.0 },
        );
        let mut engine = AlertEngine::new(vec![rule]);
        assert_eq!(engine.evaluate(&r.snapshot()), 0);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
        assert_eq!(engine.statuses()[0].last_value, None);
    }

    #[test]
    fn gauge_below_uses_inverted_hysteresis() {
        let r = Registry::new();
        let rule = AlertRule::new("low", "g", AlertCondition::GaugeBelow { threshold: 10.0 })
            .with_hysteresis(0.2);
        let mut engine = AlertEngine::new(vec![rule]);
        assert_eq!(engine.evaluate(&snapshot_with_gauge(&r, 5.0)), 1);
        // 11 is above the threshold but below 12 = 10×1.2: stays firing.
        assert_eq!(engine.evaluate(&snapshot_with_gauge(&r, 11.0)), 0);
        assert_eq!(engine.statuses()[0].state, AlertState::Firing);
        assert_eq!(engine.evaluate(&snapshot_with_gauge(&r, 13.0)), 1);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
    }

    #[test]
    fn registered_engine_publishes_state_gauges() {
        let r = Registry::new();
        let rule = AlertRule::new("hot", "g", AlertCondition::GaugeAbove { threshold: 1.0 });
        let mut engine = AlertEngine::registered(vec![rule], &r.scope(&[("engine", "e0")]));
        engine.evaluate(&snapshot_with_gauge(&r, 5.0));
        let snap = r.snapshot();
        let state = snap
            .metrics
            .iter()
            .find(|m| m.name == "herqles_alert_state")
            .expect("state gauge registered");
        assert!(state
            .labels
            .contains(&("rule".to_string(), "hot".to_string())));
        assert_eq!(state.value, MetricValue::Gauge(2.0));
    }

    #[test]
    #[should_panic(expected = "duplicate alert rule name")]
    fn duplicate_rule_names_panic() {
        let a = AlertRule::new("x", "g", AlertCondition::GaugeAbove { threshold: 1.0 });
        let b = AlertRule::new("x", "g", AlertCondition::GaugeAbove { threshold: 2.0 });
        let _ = AlertEngine::new(vec![a, b]);
    }
}
