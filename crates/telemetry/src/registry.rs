//! Named metrics with label sets: the scrape-side index over the hot-side
//! primitives.
//!
//! Registration (setup time, control plane) takes a mutex and allocates;
//! the returned handles ([`Counter`], [`Gauge`], [`crate::Histogram`]) are
//! `Arc`s the hot path records into with relaxed atomics, never touching
//! the registry again. [`Registry::scope`] pins a label set onto every
//! metric registered through it — one scope per engine is the seam a
//! multi-tenant fleet hangs per-tenant views on.
//!
//! [`Registry::snapshot`] freezes every registered metric into a
//! [`RegistrySnapshot`], which both exporters
//! ([`RegistrySnapshot::to_prometheus_text`], [`RegistrySnapshot::to_json`])
//! render — the two views always agree because they share the snapshot.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSummary};

/// A monotonically increasing counter. Lock- and allocation-free.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-write-wins gauge storing an `f64`. Lock- and allocation-free.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// The handle kinds a registry can hold.
#[derive(Debug, Clone)]
enum MetricHandle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl MetricHandle {
    fn type_name(&self) -> &'static str {
        match self {
            MetricHandle::Counter(_) => "counter",
            MetricHandle::Gauge(_) => "gauge",
            MetricHandle::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    metric: MetricHandle,
}

/// Validates a metric name against the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn validate_name(name: &str) {
    let mut chars = name.chars();
    let ok_first = |c: char| c.is_ascii_alphabetic() || c == '_' || c == ':';
    let valid = match chars.next() {
        Some(c) => ok_first(c) && chars.all(|c| ok_first(c) || c.is_ascii_digit()),
        None => false,
    };
    assert!(valid, "invalid metric name {name:?}");
}

/// Validates a label key (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn validate_label_key(key: &str) {
    let mut chars = key.chars();
    let ok_first = |c: char| c.is_ascii_alphabetic() || c == '_';
    let valid = match chars.next() {
        Some(c) => ok_first(c) && chars.all(|c| ok_first(c) || c.is_ascii_digit()),
        None => false,
    };
    assert!(valid, "invalid label key {key:?}");
}

/// The metric index: names, labels and help strings mapping to live metric
/// handles. Cheap to share (`&Registry` everywhere); interior mutex guards
/// registration and snapshotting only.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registration scope whose `labels` are prepended to every metric
    /// registered through it.
    pub fn scope<'r>(&'r self, labels: &[(&str, &str)]) -> Scope<'r> {
        for (k, _) in labels {
            validate_label_key(k);
        }
        Scope {
            registry: self,
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        }
    }

    /// Registers (or retrieves) a counter. Re-registering the same
    /// `(name, labels)` returns the existing handle.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name/label key, or if `name` is already
    /// registered with a different metric type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, || {
            MetricHandle::Counter(Arc::new(Counter::new()))
        }) {
            MetricHandle::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Registers (or retrieves) a gauge. Same contract as
    /// [`Registry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, || {
            MetricHandle::Gauge(Arc::new(Gauge::new()))
        }) {
            MetricHandle::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Registers (or retrieves) a histogram. Same contract as
    /// [`Registry::counter`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, help, labels, || {
            MetricHandle::Histogram(Arc::new(Histogram::new()))
        }) {
            MetricHandle::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricHandle,
    ) -> MetricHandle {
        validate_name(name);
        for (k, _) in labels {
            validate_label_key(k);
        }
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        let mut entries = self.entries.lock().expect("registry poisoned");
        // One metric type per family name, across all label sets.
        let fresh = make();
        if let Some(existing) = entries.iter().find(|e| e.name == name) {
            assert_eq!(
                existing.metric.type_name(),
                fresh.type_name(),
                "metric family {name} registered with conflicting types"
            );
        }
        if let Some(existing) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return existing.metric.clone();
        }
        entries.push(Entry {
            name: name.to_string(),
            labels,
            help: help.to_string(),
            metric: fresh.clone(),
        });
        fresh
    }

    /// Freezes every registered metric into a deterministic, ordered
    /// snapshot (sorted by name then labels).
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut metrics: Vec<MetricSnapshot> = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                value: match &e.metric {
                    MetricHandle::Counter(c) => MetricValue::Counter(c.get()),
                    MetricHandle::Gauge(g) => MetricValue::Gauge(g.get()),
                    MetricHandle::Histogram(h) => MetricValue::Histogram(h.summary()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        RegistrySnapshot { metrics }
    }
}

/// A registration scope: a [`Registry`] reference plus a pinned label set.
#[derive(Debug)]
pub struct Scope<'r> {
    registry: &'r Registry,
    labels: Vec<(String, String)>,
}

impl Scope<'_> {
    fn merged<'a>(&'a self, extra: &'a [(&str, &str)]) -> Vec<(&'a str, &'a str)> {
        self.labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
            .collect()
    }

    /// [`Registry::counter`] with the scope's labels prepended.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.registry.counter(name, help, &self.merged(labels))
    }

    /// [`Registry::gauge`] with the scope's labels prepended.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.registry.gauge(name, help, &self.merged(labels))
    }

    /// [`Registry::histogram`] with the scope's labels prepended.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.registry.histogram(name, help, &self.merged(labels))
    }
}

/// The frozen value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram scalar summary.
    Histogram(HistogramSummary),
}

/// One metric in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Family name.
    pub name: String,
    /// Sorted label set.
    pub labels: Vec<(String, String)>,
    /// Help string (from the first registration of the family).
    pub help: String,
    /// Frozen value.
    pub value: MetricValue,
}

/// A deterministic, ordered freeze of a whole [`Registry`] — the single
/// source both exporters render.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// Metrics sorted by `(name, labels)` so families are contiguous.
    pub metrics: Vec<MetricSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn reregistration_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("hits_total", "hits", &[("shard", "0")]);
        let b = r.counter("hits_total", "hits", &[("shard", "0")]);
        a.inc();
        assert_eq!(b.get(), 1, "same (name, labels) must share storage");
        let other = r.counter("hits_total", "hits", &[("shard", "1")]);
        assert_eq!(other.get(), 0);
        assert_eq!(r.snapshot().metrics.len(), 2);
    }

    #[test]
    #[should_panic(expected = "conflicting types")]
    fn type_conflicts_panic() {
        let r = Registry::new();
        let _ = r.counter("x_total", "", &[]);
        let _ = r.gauge("x_total", "", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_panic() {
        let _ = Registry::new().counter("9bad", "", &[]);
    }

    #[test]
    fn scope_labels_are_pinned() {
        let r = Registry::new();
        let scope = r.scope(&[("engine", "e0")]);
        let h = scope.histogram("lat_ns", "latency", &[("stage", "synth")]);
        h.record(10);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(
            snap.metrics[0].labels,
            vec![
                ("engine".to_string(), "e0".to_string()),
                ("stage".to_string(), "synth".to_string())
            ]
        );
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let r = Registry::new();
        let _ = r.counter("z_total", "", &[]);
        let _ = r.counter("a_total", "", &[("k", "2")]);
        let _ = r.counter("a_total", "", &[("k", "1")]);
        let names: Vec<_> = r
            .snapshot()
            .metrics
            .iter()
            .map(|m| (m.name.clone(), m.labels.clone()))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
