//! The shared timing vocabulary: saturating nanosecond conversion, a
//! process-global monotonic clock, and a reusable lap timer.
//!
//! Before this module every timing call site hand-rolled the same
//! `Instant` → `u64` nanosecond conversion; centralizing it here keeps the
//! saturation semantics (durations past `u64::MAX` ns clamp instead of
//! panicking) identical everywhere.

use std::sync::OnceLock;
use std::time::Instant;

use crate::hist::Histogram;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-global monotonic epoch: every [`now_ns`] timestamp is
/// relative to the first call in the process, so timestamps from different
/// components share one timeline.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process-global [`epoch`]. Never
/// allocates; saturates at `u64::MAX`.
pub fn now_ns() -> u64 {
    duration_ns(epoch(), Instant::now())
}

/// Saturating nanosecond span between two instants: `0` if `to < from`
/// (monotonic clocks shouldn't go backwards, but the conversion must not
/// panic if one does), `u64::MAX` if the span exceeds `u64` nanoseconds.
pub fn duration_ns(from: Instant, to: Instant) -> u64 {
    u64::try_from(to.saturating_duration_since(from).as_nanos()).unwrap_or(u64::MAX)
}

/// A reusable two-hand stopwatch for staged pipelines: [`StageTimer::lap_ns`]
/// returns the nanoseconds since the previous lap (or start), so a
/// multi-stage hot loop charges each stage with one `Instant::now()` call
/// per boundary instead of juggling `t0..tN` pairs. Allocation-free.
///
/// ```
/// use herqles_telemetry::StageTimer;
///
/// let mut timer = StageTimer::start();
/// let stage_a = timer.lap_ns(); // ns spent before this boundary
/// let stage_b = timer.lap_ns(); // ns between the two laps
/// assert!(timer.elapsed_ns() >= stage_a + stage_b);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StageTimer {
    t0: Instant,
    last: Instant,
}

impl StageTimer {
    /// Starts the timer; both hands at now.
    #[must_use]
    pub fn start() -> Self {
        let now = Instant::now();
        StageTimer { t0: now, last: now }
    }

    /// Total nanoseconds since [`StageTimer::start`] (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        duration_ns(self.t0, Instant::now())
    }

    /// Total seconds since [`StageTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_ns() as f64 * 1e-9
    }

    /// Nanoseconds since the previous lap (or start), and advances the lap
    /// hand.
    pub fn lap_ns(&mut self) -> u64 {
        let now = Instant::now();
        let ns = duration_ns(self.last, now);
        self.last = now;
        ns
    }

    /// [`StageTimer::lap_ns`] plus the lap's *begin* timestamp on the
    /// process-global [`now_ns`] timeline: returns
    /// `(begin_ns, duration_ns)` for the window between the previous lap
    /// boundary and now — exactly the pair a
    /// [`SpanRing`](crate::span::SpanRing) record wants. Allocation-free.
    pub fn lap_span_ns(&mut self) -> (u64, u64) {
        let begin = duration_ns(epoch(), self.last);
        (begin, self.lap_ns())
    }

    /// [`StageTimer::lap_ns`] recorded straight into a [`Histogram`].
    pub fn record_lap(&mut self, hist: &Histogram) -> u64 {
        let ns = self.lap_ns();
        hist.record(ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn duration_is_saturating_not_panicking() {
        let a = Instant::now();
        let b = a + Duration::from_nanos(250);
        assert_eq!(duration_ns(a, b), 250);
        // Reversed order clamps to zero instead of panicking.
        assert_eq!(duration_ns(b, a), 0);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn laps_partition_elapsed_time() {
        let mut t = StageTimer::start();
        std::thread::sleep(Duration::from_millis(2));
        let l1 = t.lap_ns();
        let l2 = t.lap_ns();
        assert!(l1 >= 1_000_000, "slept ≥1 ms, lap saw {l1} ns");
        assert!(t.elapsed_ns() >= l1 + l2);
    }
}
