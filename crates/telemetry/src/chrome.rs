//! Chrome Trace Event Format export for ring snapshots.
//!
//! [`ChromeTrace`] renders [`SpanEvent`]s and [`TraceEvent`]s as the JSON
//! object format understood by Perfetto and `chrome://tracing`: spans
//! become `"X"` (complete) events with microsecond `ts`/`dur`, point
//! events become `"I"` (instant) events, and `"M"` metadata events name
//! the processes and threads so the track layout is self-describing.
//! Convention used by the streaming engine: one *process* (`pid`) per
//! engine, `tid 0` for the engine's stage track, `tid 1 + worker` for
//! pool-worker tracks.
//!
//! The builder is control-plane code — it allocates freely; hot paths only
//! ever touch the rings. Serialization is hand-rolled (the crate is
//! dependency-free): names are engine labels and `'static` kind labels,
//! escaped for the JSON string grammar anyway for safety.

use std::fmt::Write as _;

use crate::span::SpanEvent;
use crate::trace::TraceEvent;

/// One renderable event, normalized from spans/instants/metadata.
#[derive(Debug, Clone)]
enum Entry {
    Complete {
        name: &'static str,
        pid: u32,
        tid: u32,
        ts_ns: u64,
        dur_ns: u64,
        arg: u64,
    },
    Instant {
        name: &'static str,
        pid: u32,
        tid: u32,
        ts_ns: u64,
        arg: u64,
    },
    ProcessName {
        pid: u32,
        name: String,
    },
    ThreadName {
        pid: u32,
        tid: u32,
        name: String,
    },
}

/// Builder assembling one Chrome Trace Event Format JSON document from any
/// number of ring snapshots. See the module docs for the track convention.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    entries: Vec<Entry>,
}

impl ChromeTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Names the process `pid` in the trace UI (emitted as an `"M"`
    /// `process_name` metadata event).
    pub fn set_process_name(&mut self, pid: u32, name: &str) {
        self.entries.push(Entry::ProcessName {
            pid,
            name: name.to_string(),
        });
    }

    /// Names the thread `(pid, tid)` in the trace UI (emitted as an `"M"`
    /// `thread_name` metadata event).
    pub fn set_thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.entries.push(Entry::ThreadName {
            pid,
            tid,
            name: name.to_string(),
        });
    }

    /// Adds a span snapshot under process `pid`: each span renders as an
    /// `"X"` complete event on display thread `tid_base + span.track`.
    pub fn add_spans(&mut self, pid: u32, tid_base: u32, spans: &[SpanEvent]) {
        for s in spans {
            self.entries.push(Entry::Complete {
                name: s.kind.label(),
                pid,
                tid: tid_base.saturating_add(s.track),
                ts_ns: s.ts_ns,
                dur_ns: s.dur_ns,
                arg: s.arg,
            });
        }
    }

    /// Adds a point-event snapshot under `(pid, tid)`: each trace event
    /// renders as an `"I"` instant event.
    pub fn add_instants(&mut self, pid: u32, tid: u32, events: &[TraceEvent]) {
        for e in events {
            self.entries.push(Entry::Instant {
                name: e.kind.label(),
                pid,
                tid,
                ts_ns: e.ts_ns,
                arg: e.arg,
            });
        }
    }

    /// Renderable (non-metadata) events accumulated so far.
    pub fn event_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, Entry::Complete { .. } | Entry::Instant { .. }))
            .count()
    }

    /// Renders the accumulated events as a Chrome Trace Event Format JSON
    /// object (`{"displayTimeUnit":"ns","traceEvents":[...]}`). Events are
    /// sorted by `(pid, tid, ts)` with metadata first, so per-track
    /// timestamps come out monotone; `ts`/`dur` are microseconds (Chrome's
    /// unit) with nanosecond precision kept in the fraction.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut sorted: Vec<&Entry> = self.entries.iter().collect();
        sorted.sort_by_key(|e| match e {
            // Metadata first (ts 0), then events laid out per track.
            Entry::ProcessName { pid, .. } => (0u8, *pid, 0u32, 0u64),
            Entry::ThreadName { pid, tid, .. } => (0, *pid, *tid, 0),
            Entry::Complete {
                pid, tid, ts_ns, ..
            } => (1, *pid, *tid, *ts_ns),
            Entry::Instant {
                pid, tid, ts_ns, ..
            } => (1, *pid, *tid, *ts_ns),
        });

        let mut out = String::with_capacity(64 + sorted.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, entry) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match entry {
                Entry::Complete {
                    name,
                    pid,
                    tid,
                    ts_ns,
                    dur_ns,
                    arg,
                } => {
                    out.push_str("{\"name\":");
                    push_json_string(&mut out, name);
                    let _ = write!(
                        out,
                        ",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{\"arg\":{arg}}}}}",
                        MicroNs(*ts_ns),
                        MicroNs(*dur_ns),
                    );
                }
                Entry::Instant {
                    name,
                    pid,
                    tid,
                    ts_ns,
                    arg,
                } => {
                    out.push_str("{\"name\":");
                    push_json_string(&mut out, name);
                    let _ = write!(
                        out,
                        ",\"ph\":\"I\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"args\":{{\"arg\":{arg}}}}}",
                        MicroNs(*ts_ns),
                    );
                }
                Entry::ProcessName { pid, name } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"ts\":0,\"args\":{{\"name\":"
                    );
                    push_json_string(&mut out, name);
                    out.push_str("}}");
                }
                Entry::ThreadName { pid, tid, name } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"ts\":0,\"args\":{{\"name\":"
                    );
                    push_json_string(&mut out, name);
                    out.push_str("}}");
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Nanoseconds displayed as a microsecond decimal (`1234` ns → `1.234`),
/// Chrome's native trace unit, without going through floating point (so
/// large timestamps keep full precision).
struct MicroNs(u64);

impl std::fmt::Display for MicroNs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let micros = self.0 / 1_000;
        let frac = self.0 % 1_000;
        if frac == 0 {
            write!(f, "{micros}")
        } else {
            write!(f, "{micros}.{frac:03}")
        }
    }
}

/// Appends `s` as a JSON string literal (quoted, minimally escaped).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, SpanRing};
    use crate::trace::{EventKind, TraceRing};

    #[test]
    fn renders_complete_events_with_metadata() {
        let ring = SpanRing::new(8);
        ring.record(SpanKind::Synth, 0, 1_500, 2_000, 0);
        ring.record(SpanKind::Task, 2, 1_500, 900, 4);
        let mut trace = ChromeTrace::new();
        trace.set_process_name(1, "engine d5-f64");
        trace.set_thread_name(1, 0, "stages");
        trace.set_thread_name(1, 3, "worker 2");
        trace.add_spans(1, 1, &ring.snapshot());
        let json = trace.to_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"engine d5-f64\""));
        assert!(json.contains("\"ph\":\"X\""));
        // 1500 ns → 1.5 µs; track 2 + tid_base 1 → tid 3.
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"tid\":3"));
        assert_eq!(trace.event_count(), 2);
    }

    #[test]
    fn renders_instants_and_sorts_per_track() {
        let ring = TraceRing::new(8);
        ring.record(EventKind::HotSwap, 1);
        let mut trace = ChromeTrace::new();
        // Out-of-order spans on one track must come out ts-sorted.
        trace.add_spans(
            0,
            0,
            &[
                SpanEvent {
                    seq: 1,
                    track: 0,
                    kind: SpanKind::Decode,
                    ts_ns: 9_000,
                    dur_ns: 100,
                    arg: 0,
                },
                SpanEvent {
                    seq: 0,
                    track: 0,
                    kind: SpanKind::Synth,
                    ts_ns: 4_000,
                    dur_ns: 100,
                    arg: 0,
                },
            ],
        );
        trace.add_instants(0, 0, &ring.snapshot());
        let json = trace.to_json();
        assert!(json.contains("\"ph\":\"I\""));
        let synth = json.find("\"name\":\"synth\"").expect("synth present");
        let decode = json.find("\"name\":\"decode\"").expect("decode present");
        assert!(synth < decode, "per-track events must be ts-sorted");
    }

    #[test]
    fn escapes_names() {
        let mut trace = ChromeTrace::new();
        trace.set_process_name(0, "weird \"name\"\nwith\tcontrol\u{1}");
        let json = trace.to_json();
        assert!(json.contains("weird \\\"name\\\"\\nwith\\tcontrol\\u0001"));
    }

    #[test]
    fn micro_ns_keeps_ns_precision() {
        assert_eq!(MicroNs(0).to_string(), "0");
        assert_eq!(MicroNs(1_000).to_string(), "1");
        assert_eq!(MicroNs(1_234).to_string(), "1.234");
        assert_eq!(MicroNs(999).to_string(), "0.999");
        assert_eq!(MicroNs(1_000_007).to_string(), "1000.007");
    }
}
