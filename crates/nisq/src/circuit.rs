//! Circuits as gate sequences with a builder API.

use crate::complex::Complex;
use crate::state::StateVector;

/// A quantum gate with its operand qubits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Z-rotation by the angle (radians).
    Rz(usize, f64),
    /// X-rotation by the angle (radians).
    Rx(usize, f64),
    /// Controlled-NOT (control, target).
    Cx(usize, usize),
    /// Controlled-Z.
    Cz(usize, usize),
    /// Controlled phase `diag(1,1,1,e^{iθ})`.
    Cp(usize, usize, f64),
    /// Swap.
    Swap(usize, usize),
}

impl Gate {
    /// The qubits this gate acts on (1 or 2).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::Y(q) | Gate::Z(q) | Gate::Rz(q, _) | Gate::Rx(q, _) => {
                vec![q]
            }
            Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Cp(a, b, _) | Gate::Swap(a, b) => vec![a, b],
        }
    }

    /// Whether this is a two-qubit gate.
    pub fn is_two_qubit(&self) -> bool {
        self.qubits().len() == 2
    }

    /// Applies the gate to a state vector.
    pub fn apply(&self, state: &mut StateVector) {
        const FRAC: f64 = std::f64::consts::FRAC_1_SQRT_2;
        let h = [
            [Complex::new(FRAC, 0.0), Complex::new(FRAC, 0.0)],
            [Complex::new(FRAC, 0.0), Complex::new(-FRAC, 0.0)],
        ];
        let x = [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]];
        match *self {
            Gate::H(q) => state.apply_1q(h, q),
            Gate::X(q) => state.apply_1q(x, q),
            Gate::Y(q) => state.apply_1q(
                [[Complex::ZERO, -Complex::I], [Complex::I, Complex::ZERO]],
                q,
            ),
            Gate::Z(q) => state.apply_1q(
                [
                    [Complex::ONE, Complex::ZERO],
                    [Complex::ZERO, Complex::new(-1.0, 0.0)],
                ],
                q,
            ),
            Gate::Rz(q, theta) => state.apply_1q(
                [
                    [Complex::from_polar_unit(-theta / 2.0), Complex::ZERO],
                    [Complex::ZERO, Complex::from_polar_unit(theta / 2.0)],
                ],
                q,
            ),
            Gate::Rx(q, theta) => {
                let c = Complex::new((theta / 2.0).cos(), 0.0);
                let s = Complex::new(0.0, -(theta / 2.0).sin());
                state.apply_1q([[c, s], [s, c]], q);
            }
            Gate::Cx(c, t) => state.apply_controlled_1q(x, c, t),
            Gate::Cz(a, b) => state.apply_controlled_phase(Complex::new(-1.0, 0.0), a, b),
            Gate::Cp(a, b, theta) => {
                state.apply_controlled_phase(Complex::from_polar_unit(theta), a, b)
            }
            Gate::Swap(a, b) => state.apply_swap(a, b),
        }
    }
}

/// A circuit: a qubit count plus an ordered gate list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "need at least one qubit");
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The gate sequence.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates.
    pub fn n_two_qubit(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        for q in gate.qubits() {
            assert!(q < self.n_qubits, "gate operand {q} out of range");
        }
        self.gates.push(gate);
        self
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Appends a Z-rotation.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(q, theta))
    }

    /// Appends an X-rotation.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(q, theta))
    }

    /// Appends a CNOT.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::Cx(c, t))
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz(a, b))
    }

    /// Appends a controlled phase.
    pub fn cp(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.push(Gate::Cp(a, b, theta))
    }

    /// Appends a swap.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_gates() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(2, 0.5);
        assert_eq!(c.len(), 4);
        assert_eq!(c.n_two_qubit(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn gate_qubits_are_reported() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(Gate::Cx(1, 2).qubits(), vec![1, 2]);
        assert!(Gate::Cp(0, 1, 0.3).is_two_qubit());
        assert!(!Gate::Rz(0, 0.1).is_two_qubit());
    }

    #[test]
    fn rz_phases_commute_to_identity() {
        let mut s = StateVector::zero_state(1);
        Gate::H(0).apply(&mut s);
        Gate::Rz(0, 1.1).apply(&mut s);
        Gate::Rz(0, -1.1).apply(&mut s);
        Gate::H(0).apply(&mut s);
        assert!((s.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cz_equals_cp_pi() {
        let build = |use_cz: bool| {
            let mut s = StateVector::zero_state(2);
            Gate::H(0).apply(&mut s);
            Gate::H(1).apply(&mut s);
            if use_cz {
                Gate::Cz(0, 1).apply(&mut s);
            } else {
                Gate::Cp(0, 1, std::f64::consts::PI).apply(&mut s);
            }
            s
        };
        let a = build(true);
        let b = build(false);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm_sqr() < 1e-20);
        }
    }

    #[test]
    fn y_gate_is_ixz_up_to_phase() {
        let mut s = StateVector::zero_state(1);
        Gate::Y(0).apply(&mut s);
        assert!((s.probabilities()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_operand_panics() {
        let mut c = Circuit::new(2);
        c.cx(0, 2);
    }
}
