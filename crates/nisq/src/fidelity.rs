//! Fidelity metrics for benchmark outcomes.

use crate::sim::Counts;

/// Total variation distance between two distributions over the same outcome
/// space: `TVD = ½ Σ |p_i − q_i|`.
///
/// # Panics
///
/// Panics if lengths differ or either is empty.
pub fn total_variation_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share outcome space");
    assert!(!p.is_empty(), "empty distributions");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// TVD-based fidelity, `1 − TVD` (the paper's GHZ/QAOA metric).
pub fn tvd_fidelity(ideal: &[f64], measured: &[f64]) -> f64 {
    1.0 - total_variation_distance(ideal, measured)
}

/// Fraction of shots that produced the target outcome (the BV / QFT-roundtrip
/// success metric).
///
/// # Panics
///
/// Panics if counts are empty.
pub fn success_probability(counts: &Counts, target: u64) -> f64 {
    let total: usize = counts.values().sum();
    assert!(total > 0, "empty counts");
    *counts.get(&target).unwrap_or(&0) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tvd_of_identical_distributions_is_zero() {
        let p = [0.25, 0.75];
        assert_eq!(total_variation_distance(&p, &p), 0.0);
        assert_eq!(tvd_fidelity(&p, &p), 1.0);
    }

    #[test]
    fn tvd_of_disjoint_distributions_is_one() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert_eq!(total_variation_distance(&p, &q), 1.0);
    }

    #[test]
    fn tvd_is_symmetric() {
        let p = [0.1, 0.4, 0.5];
        let q = [0.3, 0.3, 0.4];
        assert!(
            (total_variation_distance(&p, &q) - total_variation_distance(&q, &p)).abs() < 1e-15
        );
    }

    #[test]
    fn success_probability_counts_target() {
        let mut counts = Counts::new();
        counts.insert(5, 30);
        counts.insert(2, 70);
        assert!((success_probability(&counts, 5) - 0.3).abs() < 1e-12);
        assert_eq!(success_probability(&counts, 9), 0.0);
    }

    #[test]
    #[should_panic(expected = "share outcome space")]
    fn mismatched_lengths_panic() {
        let _ = total_variation_distance(&[1.0], &[0.5, 0.5]);
    }
}
