//! The paper's NISQ benchmark circuits: `qft-n`, `ghz-n`, `bv-n`, `qaoa-n`.

use crate::circuit::Circuit;

/// Quantum Fourier transform on `n` qubits followed by its inverse — a
/// self-verifying workload whose ideal output is the input state (the
/// `qft-n` benchmark's success criterion).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qft_roundtrip(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    append_qft(&mut c, n, false);
    append_qft(&mut c, n, true);
    c
}

/// The forward QFT alone.
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    append_qft(&mut c, n, false);
    c
}

fn append_qft(c: &mut Circuit, n: usize, inverse: bool) {
    let sign = if inverse { -1.0 } else { 1.0 };
    let qubits: Vec<usize> = (0..n).collect();
    let body = |c: &mut Circuit| {
        for i in (0..n).rev() {
            c.h(qubits[i]);
            for j in (0..i).rev() {
                let theta = sign * std::f64::consts::PI / f64::from(1u32 << (i - j));
                c.cp(qubits[j], qubits[i], theta);
            }
        }
    };
    if inverse {
        // Inverse: reverse gate order with negated phases. For this
        // palindrome structure, rebuilding in reverse order achieves it.
        let mut tmp = Circuit::new(n);
        body(&mut tmp);
        for g in tmp.gates().iter().rev() {
            c.push(*g);
        }
    } else {
        body(c);
    }
}

/// GHZ state preparation on `n` qubits: `H` then a CNOT ladder. Ideal output
/// is an equal superposition of all-zeros and all-ones.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

/// Bernstein–Vazirani with an `n`-bit secret (little-endian bits of
/// `secret`), using the phase-oracle construction without an ancilla. The
/// ideal measurement outcome is exactly `secret`.
///
/// # Panics
///
/// Panics if `n == 0` or `secret >= 2^n`.
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    assert!(n < 64 && secret < (1u64 << n), "secret must fit in n bits");
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    // Phase oracle: Z on every secret bit flips the phase of |1⟩ components.
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            c.push(crate::circuit::Gate::Z(q));
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// The conventional alternating secret `1010…` used by benchmark suites.
pub fn alternating_secret(n: usize) -> u64 {
    let mut s = 0u64;
    for q in (0..n).step_by(2) {
        s |= 1 << q;
    }
    s
}

/// One-level QAOA for MaxCut on a ring of `n` vertices with angles
/// `(gamma, beta)`: the standard cost-layer (`ZZ` interactions via
/// CNOT–RZ–CNOT) plus the mixer layer.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn qaoa_ring(n: usize, gamma: f64, beta: f64) -> Circuit {
    assert!(n >= 2, "QAOA ring needs at least two vertices");
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for e in 0..n {
        let (a, b) = (e, (e + 1) % n);
        if a == b {
            continue;
        }
        c.cx(a, b);
        c.rz(b, 2.0 * gamma);
        c.cx(a, b);
    }
    for q in 0..n {
        c.rx(q, 2.0 * beta);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run_ideal;

    #[test]
    fn qft_roundtrip_is_identity_on_zero() {
        for n in [2, 4] {
            let probs = run_ideal(&qft_roundtrip(n)).probabilities();
            assert!((probs[0] - 1.0).abs() < 1e-9, "qft-{n} roundtrip broke");
        }
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let probs = run_ideal(&qft(3)).probabilities();
        for (idx, p) in probs.iter().enumerate() {
            assert!((p - 0.125).abs() < 1e-9, "index {idx}: {p}");
        }
    }

    #[test]
    fn ghz_is_cat_state() {
        let probs = run_ideal(&ghz(5)).probabilities();
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[31] - 0.5).abs() < 1e-12);
        let middle: f64 = probs[1..31].iter().sum();
        assert!(middle.abs() < 1e-12);
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        for n in [3, 5, 8] {
            let secret = alternating_secret(n);
            let probs = run_ideal(&bernstein_vazirani(n, secret)).probabilities();
            assert!(
                (probs[secret as usize] - 1.0).abs() < 1e-9,
                "bv-{n} failed to produce its secret deterministically"
            );
        }
    }

    #[test]
    fn alternating_secret_pattern() {
        assert_eq!(alternating_secret(5), 0b10101);
        assert_eq!(alternating_secret(4), 0b0101);
    }

    #[test]
    fn qaoa_preserves_norm_and_mixes() {
        let state = run_ideal(&qaoa_ring(4, 0.7, 0.4));
        assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
        // The distribution must not be a delta.
        let max = state.probabilities().into_iter().fold(0.0, f64::max);
        assert!(max < 0.9);
    }

    #[test]
    fn qaoa_zero_angles_is_uniform() {
        let probs = run_ideal(&qaoa_ring(3, 0.0, 0.0)).probabilities();
        for p in probs {
            assert!((p - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "fit in n bits")]
    fn oversized_secret_panics() {
        let _ = bernstein_vazirani(2, 4);
    }
}
