//! Iterative quantum-phase-estimation timing model (Fig. 11(b)).
//!
//! The dynamic-circuit QPE variant (Córcoles et al., the paper's ref. 7) extracts
//! an `m`-bit phase with `m` sequential iterations on a single ancilla. Each
//! iteration applies a Hadamard, a controlled-`U^{2^k}`, a classically
//! conditioned phase correction, another Hadamard, and a **mid-circuit
//! measurement with feed-forward** — so the readout duration enters `m`
//! times and dominates the total runtime. Halving readout (what HERQULES
//! enables on its fastest qubit, Table 3) bends the whole curve down.

/// Durations of the iterative-QPE primitive operations, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpeTimings {
    /// Single-qubit gate duration.
    pub single_qubit_ns: f64,
    /// Duration of one controlled-`U^{2^k}` application (modelled constant
    /// per iteration: hardware compiles the power into a calibrated pulse).
    pub controlled_u_ns: f64,
    /// Readout duration (the swept parameter).
    pub readout_ns: f64,
    /// Classical feed-forward latency after each measurement.
    pub feedforward_ns: f64,
}

impl QpeTimings {
    /// Superconducting-hardware-like defaults with the given readout length.
    pub fn with_readout_ns(readout_ns: f64) -> Self {
        QpeTimings {
            single_qubit_ns: 30.0,
            controlled_u_ns: 300.0,
            readout_ns,
            feedforward_ns: 200.0,
        }
    }

    /// Duration of one QPE iteration.
    pub fn iteration_ns(&self) -> f64 {
        // H + controlled-U + conditioned Rz + H + measurement + feed-forward.
        3.0 * self.single_qubit_ns + self.controlled_u_ns + self.readout_ns + self.feedforward_ns
    }

    /// Total circuit duration for an `m`-bit phase estimate, in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn circuit_duration_us(&self, bits: usize) -> f64 {
        assert!(bits > 0, "need at least one phase bit");
        bits as f64 * self.iteration_ns() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_is_linear_in_bits() {
        let t = QpeTimings::with_readout_ns(1000.0);
        let d4 = t.circuit_duration_us(4);
        let d8 = t.circuit_duration_us(8);
        assert!((d8 - 2.0 * d4).abs() < 1e-12);
    }

    #[test]
    fn halved_readout_shrinks_duration_substantially() {
        // Fig. 11(b): with ~1.6 µs iterations, readout is ~60 %; halving it
        // must save ~30 % end to end.
        let full = QpeTimings::with_readout_ns(1000.0).circuit_duration_us(14);
        let fast = QpeTimings::with_readout_ns(500.0).circuit_duration_us(14);
        let saving = 1.0 - fast / full;
        assert!(saving > 0.25 && saving < 0.40, "saving {saving}");
    }

    #[test]
    fn fourteen_bit_qpe_is_tens_of_microseconds() {
        // Fig. 11(b)'s y-axis tops out around 20 µs at m = 14.
        let d = QpeTimings::with_readout_ns(1000.0).circuit_duration_us(14);
        assert!(d > 10.0 && d < 30.0, "duration {d} µs");
    }

    #[test]
    fn iteration_includes_all_components() {
        let t = QpeTimings::with_readout_ns(100.0);
        assert!((t.iteration_ns() - (90.0 + 300.0 + 100.0 + 200.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one phase bit")]
    fn zero_bits_panics() {
        let _ = QpeTimings::with_readout_ns(1000.0).circuit_duration_us(0);
    }
}
