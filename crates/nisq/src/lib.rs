//! Noisy state-vector simulation of NISQ benchmark circuits.
//!
//! Replaces the Qiskit Aer simulator used for the paper's Fig. 12 (NISQ
//! benchmark fidelity under two readout-error levels) and the iterative-QPE
//! timing study of Fig. 11(b):
//!
//! * [`complex`] — a minimal complex-number type;
//! * [`state`] — the state vector and gate application kernels;
//! * [`circuit`] — circuits as gate sequences, with a builder API;
//! * [`benchmarks`] — the paper's workloads: `qft-n`, `ghz-n`, `bv-n`,
//!   `qaoa-n`;
//! * [`noise`] — stochastic Pauli errors after gates plus classical readout
//!   bit-flips (an IBM-Hanoi-like error model);
//! * [`sim`] — ideal and Monte-Carlo noisy execution;
//! * [`fidelity`] — total variation distance and success-probability
//!   metrics;
//! * [`qpe`] — the iterative quantum-phase-estimation duration model.
//!
//! # Example
//!
//! ```
//! use nisq_sim::benchmarks::ghz;
//! use nisq_sim::sim::run_ideal;
//!
//! let probs = run_ideal(&ghz(3)).probabilities();
//! assert!((probs[0] - 0.5).abs() < 1e-12);
//! assert!((probs[7] - 0.5).abs() < 1e-12);
//! ```

pub mod benchmarks;
pub mod circuit;
pub mod complex;
pub mod fidelity;
pub mod noise;
pub mod qpe;
pub mod sim;
pub mod state;

pub use circuit::{Circuit, Gate};
pub use complex::Complex;
pub use fidelity::{success_probability, total_variation_distance};
pub use noise::NoiseModel;
pub use sim::{run_ideal, run_noisy, Counts};
pub use state::StateVector;
