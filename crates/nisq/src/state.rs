//! State vector and gate-application kernels.

use rand::Rng;
use rand::RngExt;

use crate::complex::Complex;

/// A pure `n`-qubit state, little-endian (qubit 0 is the least significant
/// bit of the amplitude index).
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The `|0…0⟩` state of `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 26` (amplitude vector would exceed 1 GiB).
    pub fn zero_state(n: usize) -> Self {
        assert!(n > 0, "need at least one qubit");
        assert!(n <= 26, "state vector would be enormous");
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::ONE;
        StateVector { n, amps }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The amplitudes, little-endian indexed.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Measurement probabilities per basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Squared norm (should stay 1 under unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Applies a general single-qubit unitary `[[a, b], [c, d]]` to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn apply_1q(&mut self, matrix: [[Complex; 2]; 2], target: usize) {
        assert!(target < self.n, "target qubit out of range");
        let bit = 1usize << target;
        for base in 0..self.amps.len() {
            if base & bit == 0 {
                let other = base | bit;
                let a0 = self.amps[base];
                let a1 = self.amps[other];
                self.amps[base] = matrix[0][0] * a0 + matrix[0][1] * a1;
                self.amps[other] = matrix[1][0] * a0 + matrix[1][1] * a1;
            }
        }
    }

    /// Applies a single-qubit unitary only where `control` is `|1⟩`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_controlled_1q(
        &mut self,
        matrix: [[Complex; 2]; 2],
        control: usize,
        target: usize,
    ) {
        assert!(control < self.n && target < self.n, "qubit out of range");
        assert_ne!(control, target, "control and target must differ");
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        for base in 0..self.amps.len() {
            if base & cbit != 0 && base & tbit == 0 {
                let other = base | tbit;
                let a0 = self.amps[base];
                let a1 = self.amps[other];
                self.amps[base] = matrix[0][0] * a0 + matrix[0][1] * a1;
                self.amps[other] = matrix[1][0] * a0 + matrix[1][1] * a1;
            }
        }
    }

    /// Multiplies the amplitude of every basis state where both qubits are
    /// `|1⟩` by `phase` (controlled-phase family).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_controlled_phase(&mut self, phase: Complex, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "qubit out of range");
        assert_ne!(a, b, "qubits must differ");
        let mask = (1usize << a) | (1usize << b);
        for (idx, amp) in self.amps.iter_mut().enumerate() {
            if idx & mask == mask {
                *amp = *amp * phase;
            }
        }
    }

    /// Swaps two qubits.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "qubit out of range");
        assert_ne!(a, b, "qubits must differ");
        let abit = 1usize << a;
        let bbit = 1usize << b;
        for idx in 0..self.amps.len() {
            // Swap amplitudes of |…1_a…0_b…⟩ and |…0_a…1_b…⟩ once.
            if idx & abit != 0 && idx & bbit == 0 {
                let other = (idx & !abit) | bbit;
                self.amps.swap(idx, other);
            }
        }
    }

    /// Samples one measurement outcome of all qubits (does not collapse the
    /// state — callers resample for independent shots).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut u: f64 = rng.random();
        for (idx, amp) in self.amps.iter().enumerate() {
            u -= amp.norm_sqr();
            if u <= 0.0 {
                return idx as u64;
            }
        }
        (self.amps.len() - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const H: f64 = std::f64::consts::FRAC_1_SQRT_2;

    fn hadamard() -> [[Complex; 2]; 2] {
        [
            [Complex::new(H, 0.0), Complex::new(H, 0.0)],
            [Complex::new(H, 0.0), Complex::new(-H, 0.0)],
        ]
    }

    fn pauli_x() -> [[Complex; 2]; 2] {
        [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
    }

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero_state(3);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(s.probabilities()[0], 1.0);
    }

    #[test]
    fn x_flips_qubit() {
        let mut s = StateVector::zero_state(2);
        s.apply_1q(pauli_x(), 1);
        assert!((s.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::zero_state(1);
        s.apply_1q(hadamard(), 0);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12 && (p[1] - 0.5).abs() < 1e-12);
        // H² = I.
        s.apply_1q(hadamard(), 0);
        assert!((s.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_via_controlled_x() {
        let mut s = StateVector::zero_state(2);
        s.apply_1q(hadamard(), 0);
        s.apply_controlled_1q(pauli_x(), 0, 1);
        let p = s.probabilities();
        assert!((p[0b00] - 0.5).abs() < 1e-12);
        assert!((p[0b11] - 0.5).abs() < 1e-12);
        assert!(p[0b01].abs() < 1e-12 && p[0b10].abs() < 1e-12);
    }

    #[test]
    fn controlled_phase_only_touches_11() {
        let mut s = StateVector::zero_state(2);
        s.apply_1q(hadamard(), 0);
        s.apply_1q(hadamard(), 1);
        s.apply_controlled_phase(Complex::new(-1.0, 0.0), 0, 1);
        // CZ on |++⟩: amplitudes (1,1,1,-1)/2.
        let a = s.amplitudes();
        assert!((a[3].re + 0.5).abs() < 1e-12);
        assert!((a[0].re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = StateVector::zero_state(2);
        s.apply_1q(pauli_x(), 0); // |01⟩ (qubit0 = 1)
        s.apply_swap(0, 1);
        assert!((s.probabilities()[0b10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitaries_preserve_norm() {
        let mut s = StateVector::zero_state(4);
        for q in 0..4 {
            s.apply_1q(hadamard(), q);
        }
        s.apply_controlled_1q(pauli_x(), 0, 3);
        s.apply_controlled_phase(Complex::from_polar_unit(0.73), 1, 2);
        s.apply_swap(0, 2);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut s = StateVector::zero_state(1);
        s.apply_1q(hadamard(), 0);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let ones = (0..n).filter(|_| s.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let mut s = StateVector::zero_state(2);
        s.apply_1q(pauli_x(), 2);
    }
}
