//! A minimal complex-number type for state-vector amplitudes.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number `re + i·im` in double precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_polar_unit(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Complex {
        Complex::new(self.re * k, self.im * k)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 1.5);
        assert_eq!(a + b - b, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a * Complex::ZERO, Complex::ZERO);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn polar_unit_has_unit_norm() {
        for k in 0..8 {
            let z = Complex::from_polar_unit(k as f64 * 0.7);
            assert!((z.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let a = Complex::new(3.0, -4.0);
        assert_eq!(a.conj(), Complex::new(3.0, 4.0));
        assert!((a.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a * b, Complex::new(5.0, 5.0));
    }
}
