//! Ideal and Monte-Carlo noisy circuit execution.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::circuit::{Circuit, Gate};
use crate::noise::NoiseModel;
use crate::state::StateVector;

/// Measured bit-string counts.
pub type Counts = HashMap<u64, usize>;

/// Runs a circuit without noise and returns the final state.
pub fn run_ideal(circuit: &Circuit) -> StateVector {
    let mut state = StateVector::zero_state(circuit.n_qubits());
    for gate in circuit.gates() {
        gate.apply(&mut state);
    }
    state
}

/// Runs `shots` noisy executions and returns outcome counts.
///
/// Each shot samples depolarizing Pauli insertions after gates; shots whose
/// error locations are all empty reuse the (lazily computed) ideal final
/// state, which makes low-noise simulation of large circuits cheap.
///
/// # Panics
///
/// Panics if the noise model is invalid or `shots == 0`.
pub fn run_noisy(circuit: &Circuit, noise: &NoiseModel, shots: usize, seed: u64) -> Counts {
    noise.validate().expect("invalid noise model");
    assert!(shots > 0, "need at least one shot");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = circuit.n_qubits();
    let mut counts = Counts::new();
    let mut ideal: Option<StateVector> = None;

    for _ in 0..shots {
        // Sample error insertions per gate position first, so noise-free
        // shots can skip the state-vector work entirely.
        let mut insertions: Vec<(usize, usize, usize)> = Vec::new(); // (gate idx, qubit, pauli)
        for (g_idx, gate) in circuit.gates().iter().enumerate() {
            let p = if gate.is_two_qubit() {
                noise.two_qubit_depol
            } else {
                noise.single_qubit_depol
            };
            if p == 0.0 {
                continue;
            }
            for q in gate.qubits() {
                if rng.random::<f64>() < p {
                    insertions.push((g_idx, q, NoiseModel::sample_pauli(&mut rng)));
                }
            }
        }

        let outcome = if insertions.is_empty() {
            let state = ideal.get_or_insert_with(|| run_ideal(circuit));
            state.sample(&mut rng)
        } else {
            sample_with_insertions(circuit, &insertions, &mut rng)
        };
        let outcome = noise.flip_readout(outcome, n, &mut rng);
        *counts.entry(outcome).or_insert(0) += 1;
    }
    counts
}

fn sample_with_insertions<R: Rng + ?Sized>(
    circuit: &Circuit,
    insertions: &[(usize, usize, usize)],
    rng: &mut R,
) -> u64 {
    let mut state = StateVector::zero_state(circuit.n_qubits());
    let mut ins_iter = insertions.iter().peekable();
    for (g_idx, gate) in circuit.gates().iter().enumerate() {
        gate.apply(&mut state);
        while let Some(&&(idx, q, pauli)) = ins_iter.peek() {
            if idx != g_idx {
                break;
            }
            match pauli {
                0 => Gate::X(q).apply(&mut state),
                1 => Gate::Y(q).apply(&mut state),
                _ => Gate::Z(q).apply(&mut state),
            }
            ins_iter.next();
        }
    }
    state.sample(rng)
}

/// Converts counts to a probability distribution over `2^n` outcomes.
///
/// # Panics
///
/// Panics if counts are empty.
pub fn counts_to_distribution(counts: &Counts, n_qubits: usize) -> Vec<f64> {
    let total: usize = counts.values().sum();
    assert!(total > 0, "empty counts");
    let mut dist = vec![0.0; 1 << n_qubits];
    for (&outcome, &count) in counts {
        dist[outcome as usize] = count as f64 / total as f64;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{bernstein_vazirani, ghz};

    #[test]
    fn noiseless_run_matches_ideal_distribution() {
        let c = ghz(3);
        let counts = run_noisy(&c, &NoiseModel::noiseless(), 4_000, 5);
        let dist = counts_to_distribution(&counts, 3);
        assert!((dist[0] - 0.5).abs() < 0.03);
        assert!((dist[7] - 0.5).abs() < 0.03);
        for (mid, &p) in dist.iter().enumerate().take(7).skip(1) {
            assert_eq!(p, 0.0, "outcome {mid} should be impossible");
        }
    }

    #[test]
    fn readout_error_degrades_bv_success() {
        let c = bernstein_vazirani(5, 0b10101);
        let clean = run_noisy(&c, &NoiseModel::noiseless(), 500, 1);
        let noisy_model = NoiseModel {
            readout_error: 0.1,
            ..NoiseModel::noiseless()
        };
        let noisy = run_noisy(&c, &noisy_model, 500, 1);
        let success = |counts: &Counts| *counts.get(&0b10101).unwrap_or(&0);
        assert_eq!(success(&clean), 500);
        let s = success(&noisy);
        // Expected success ≈ 0.9^5 ≈ 0.59.
        assert!(s < 400 && s > 200, "noisy successes {s}");
    }

    #[test]
    fn gate_noise_degrades_ghz() {
        let c = ghz(4);
        let model = NoiseModel {
            two_qubit_depol: 0.05,
            ..NoiseModel::noiseless()
        };
        let counts = run_noisy(&c, &model, 2_000, 3);
        let dist = counts_to_distribution(&counts, 4);
        let leaked: f64 = dist[1..15].iter().sum();
        assert!(leaked > 0.02, "expected leakage, got {leaked}");
    }

    #[test]
    fn noisy_run_is_deterministic_in_seed() {
        let c = ghz(3);
        let model = NoiseModel::ibm_hanoi_like(0.05);
        let a = run_noisy(&c, &model, 200, 7);
        let b = run_noisy(&c, &model, 200, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn distribution_normalizes() {
        let c = ghz(2);
        let counts = run_noisy(&c, &NoiseModel::ibm_hanoi_like(0.02), 300, 9);
        let dist = counts_to_distribution(&counts, 2);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn zero_shots_panics() {
        let _ = run_noisy(&ghz(2), &NoiseModel::noiseless(), 0, 0);
    }
}
