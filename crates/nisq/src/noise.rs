//! Stochastic noise model: depolarizing Pauli errors after gates plus
//! classical readout bit-flips.
//!
//! Matches the structure of the paper's Aer noise model "derived from the
//! 27-qubit IBM Hanoi backend": per-gate depolarizing channels whose rates
//! come from the backend's calibrated gate errors, and a readout error set to
//! the discriminator's assignment infidelity (this is the knob Fig. 12
//! turns: baseline `1 − 0.9122` vs HERQULES `1 − 0.9266`).

use rand::Rng;
use rand::RngExt;

/// Depolarizing + readout error model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after each single-qubit gate.
    pub single_qubit_depol: f64,
    /// Depolarizing probability after each two-qubit gate (applied to both
    /// operands as independent Paulis).
    pub two_qubit_depol: f64,
    /// Probability that each measured bit flips classically.
    pub readout_error: f64,
}

impl NoiseModel {
    /// IBM-Hanoi-like gate errors with a configurable readout error.
    ///
    /// Median Hanoi calibrations are ≈3×10⁻⁴ single-qubit and ≈7×10⁻³
    /// two-qubit (CNOT) error.
    pub fn ibm_hanoi_like(readout_error: f64) -> Self {
        NoiseModel {
            single_qubit_depol: 3e-4,
            two_qubit_depol: 7e-3,
            readout_error,
        }
    }

    /// A noise-free model.
    pub fn noiseless() -> Self {
        NoiseModel {
            single_qubit_depol: 0.0,
            two_qubit_depol: 0.0,
            readout_error: 0.0,
        }
    }

    /// Validates probability ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("single_qubit_depol", self.single_qubit_depol),
            ("two_qubit_depol", self.two_qubit_depol),
            ("readout_error", self.readout_error),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        Ok(())
    }

    /// Samples a uniformly random non-identity Pauli index (0 = X, 1 = Y,
    /// 2 = Z).
    pub fn sample_pauli<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.random_range(0..3)
    }

    /// Applies classical readout flips to a measured bit string.
    pub fn flip_readout<R: Rng + ?Sized>(&self, outcome: u64, n_qubits: usize, rng: &mut R) -> u64 {
        if self.readout_error == 0.0 {
            return outcome;
        }
        let mut out = outcome;
        for q in 0..n_qubits {
            if rng.random::<f64>() < self.readout_error {
                out ^= 1 << q;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hanoi_like_rates_are_plausible() {
        let m = NoiseModel::ibm_hanoi_like(0.02);
        assert!(m.two_qubit_depol > m.single_qubit_depol);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn noiseless_readout_is_identity() {
        let m = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.flip_readout(0b1011, 4, &mut rng), 0b1011);
    }

    #[test]
    fn readout_flip_rate_matches_probability() {
        let m = NoiseModel {
            readout_error: 0.25,
            ..NoiseModel::noiseless()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let flips: usize = (0..n)
            .map(|_| m.flip_readout(0, 1, &mut rng).count_ones() as usize)
            .sum();
        let frac = flips as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "flip rate {frac}");
    }

    #[test]
    fn pauli_sampling_covers_all_three() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[NoiseModel::sample_pauli(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let m = NoiseModel {
            single_qubit_depol: -0.1,
            ..NoiseModel::noiseless()
        };
        assert!(m.validate().is_err());
    }
}
