//! Fused demodulation + matched-filter inference kernel.
//!
//! Both demodulation and matched filtering are linear in the raw ADC
//! samples, so their composition is one linear map. For qubit `q` with
//! envelope `env` and demodulation bin width `B`:
//!
//! ```text
//! feature = Σ_b env_I(b)·bb_I(b) + env_Q(b)·bb_Q(b)
//!         = Σ_t raw_I(t)·w_I(t) + raw_Q(t)·w_Q(t)
//! w_I(t) = (env_I(b)·cos ω_q t − env_Q(b)·sin ω_q t) / B,   b = ⌊t/B⌋
//! w_Q(t) = (env_I(b)·sin ω_q t + env_Q(b)·cos ω_q t) / B
//! ```
//!
//! [`FusedFilterKernel`] folds every filter of a [`FilterBank`] into one
//! time-domain weight matrix (stored transposed, `[F × 2T]`) at
//! construction, and applies the whole bank to a [`ShotBatch`] as a single
//! blocked matmul `[shots × 2T] · [2T × F]` via
//! [`readout_nn::matrix::gemm_rt_into`] — zero per-shot allocation, the
//! per-shot demodulate → per-qubit dot-product loop replaced by one batched
//! GEMM whose per-feature weight rows stream contiguously (the software
//! mirror of the paper's pipelined FPGA MAC banks).
//!
//! Batched and per-shot features differ only by floating-point
//! reassociation (the sum over `t` is grouped per bin on the per-shot path),
//! bounded by ~1e-12 relative error; the parity tests in
//! `tests/batch_parity.rs` pin this.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use herqles_num::Real;
use readout_dsp::Demodulator;
use readout_nn::matrix::gemm_rt_into;
use readout_sim::trace::IqTrace;
use readout_sim::ShotBatch;

use crate::bank::FilterBank;

/// A filter bank compiled to raw-sample weights for batched application,
/// generic over the pipeline precision `R` ([`Real`], default `f64`).
///
/// Weights are always *derived* in `f64` (envelope × carrier × bin norm, the
/// calibration math) and rounded into `R` once at compile time, so an `f32`
/// kernel carries optimally rounded weights rather than error-compounded
/// single-precision products — exactly how fixed-point FPGA weights are
/// produced from a float training pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedFilterKernel<R: Real = f64> {
    /// `[F × 2T]` weights, stored transposed so each feature's weights are
    /// one contiguous scan: row `f` holds feature `f`'s I-plane weights for
    /// samples `0..T`, then its Q-plane weights.
    weights_t: Vec<R>,
    n_samples: usize,
    n_features: usize,
}

impl<R: Real> FusedFilterKernel<R> {
    /// Compiles `bank` against the demodulator's carrier table.
    ///
    /// Envelope bins beyond the readout window (or windows beyond the
    /// envelope) contribute zero weight, mirroring the prefix-overlap
    /// semantics of [`readout_dsp::MatchedFilter::apply`].
    ///
    /// # Panics
    ///
    /// Panics if the bank and demodulator disagree on the qubit count.
    pub fn new(demod: &Demodulator, bank: &FilterBank) -> Self {
        Self::compile(demod, bank, None)
    }

    /// Compiles `bank` with per-qubit readout-duration budgets, expressed in
    /// demodulation bins (the §5 truncated-inference setting): qubit `q`'s
    /// filters contribute weight only over their first `budgets[q]` bins, so
    /// applying the kernel to a *full-length* batch computes exactly the
    /// prefix features of
    /// [`FilterBank::features_truncated`](crate::bank::FilterBank::features_truncated)
    /// — no per-shot demod walk, one GEMM for the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts disagree or `budgets` does not hold one
    /// entry per qubit.
    pub fn new_truncated(demod: &Demodulator, bank: &FilterBank, budgets: &[usize]) -> Self {
        assert_eq!(
            budgets.len(),
            bank.n_qubits(),
            "one bin budget per qubit required"
        );
        Self::compile(demod, bank, Some(budgets))
    }

    fn compile(demod: &Demodulator, bank: &FilterBank, budgets: Option<&[usize]>) -> Self {
        assert_eq!(
            bank.n_qubits(),
            demod.n_qubits(),
            "bank and demodulator must cover the same qubits"
        );
        let n_samples = demod.n_samples();
        let n_features = bank.n_features();
        let spb = demod.samples_per_bin();
        let norm = 1.0 / spb as f64;
        let carriers = demod.carriers();
        let mut weights_t = vec![R::ZERO; 2 * n_samples * n_features];
        for q in 0..bank.n_qubits() {
            let mut filters = vec![(bank.mf_feature_index(q), bank.mf(q))];
            if let Some(rmf) = bank.rmf(q) {
                filters.push((bank.mf_feature_index(q) + 1, rmf));
            }
            for (col, filter) in filters {
                let env = filter.envelope();
                let (ei, eq) = (env.i(), env.q());
                let mut bins = env.len().min(n_samples / spb);
                if let Some(budgets) = budgets {
                    bins = bins.min(budgets[q]);
                }
                let row = &mut weights_t[col * 2 * n_samples..(col + 1) * 2 * n_samples];
                for t in 0..bins * spb {
                    let b = t / spb;
                    let (c, s) = carriers.phasor(q, t);
                    row[t] = R::from_f64((ei[b] * c - eq[b] * s) * norm);
                    row[n_samples + t] = R::from_f64((ei[b] * s + eq[b] * c) * norm);
                }
            }
        }
        FusedFilterKernel {
            weights_t,
            n_samples,
            n_features,
        }
    }

    /// Feature-vector width (`N` without RMFs, `2N` with).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Raw samples per shot the kernel was compiled for.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Whether `batch` has the sample count this kernel was compiled for.
    pub fn matches(&self, batch: &ShotBatch<R>) -> bool {
        batch.n_samples() == self.n_samples
    }

    /// Rounds the compiled weight plane into another precision — exactly the
    /// values [`FusedFilterKernel::new`] would derive at `R2` (weights are
    /// computed in `f64` either way and rounded once), at none of the
    /// recompilation cost.
    pub fn to_precision<R2: Real>(&self) -> FusedFilterKernel<R2> {
        FusedFilterKernel {
            weights_t: self
                .weights_t
                .iter()
                .map(|&w| R2::from_f64(w.to_f64()))
                .collect(),
            n_samples: self.n_samples,
            n_features: self.n_features,
        }
    }

    /// Computes the feature matrix of a whole batch into the caller-owned
    /// buffer `out`, resized to `[n_shots × n_features]` (row `s` = shot
    /// `s`'s features).
    ///
    /// # Panics
    ///
    /// Panics if the batch sample count does not match the kernel.
    pub fn features_batch(&self, batch: &ShotBatch<R>, out: &mut Vec<R>) {
        assert!(
            self.matches(batch),
            "batch sample count does not match the compiled kernel"
        );
        out.clear();
        out.resize(batch.n_shots() * self.n_features, R::ZERO);
        gemm_rt_into(
            batch.as_slice(),
            &self.weights_t,
            out,
            batch.n_shots(),
            2 * self.n_samples,
            self.n_features,
        );
    }
}

/// Both precision instantiations of one compiled filter bank, selected
/// statically by the pipeline's `R`.
///
/// Every fused design owns one of these so a single trained discriminator
/// can serve `f64` and `f32` batches; [`PrecisionKernels::get`] resolves the
/// matching kernel at monomorphization time (the `Any` downcast folds to a
/// constant branch because [`Real`] is sealed to exactly two types).
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionKernels {
    k64: FusedFilterKernel<f64>,
    k32: FusedFilterKernel<f32>,
}

impl PrecisionKernels {
    /// Compiles `bank` at both precisions.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FusedFilterKernel::new`].
    pub fn new(demod: &Demodulator, bank: &FilterBank) -> Self {
        let k64 = FusedFilterKernel::new(demod, bank);
        // The f32 plane is the f64 one rounded element-wise — identical to
        // compiling at f32 (weight math runs in f64 either way), at half
        // the compile cost.
        let k32 = k64.to_precision::<f32>();
        PrecisionKernels { k64, k32 }
    }

    /// The kernel matching the pipeline precision `R`.
    pub fn get<R: Real>(&self) -> &FusedFilterKernel<R> {
        let k64: &dyn Any = &self.k64;
        if let Some(k) = k64.downcast_ref::<FusedFilterKernel<R>>() {
            return k;
        }
        let k32: &dyn Any = &self.k32;
        k32.downcast_ref::<FusedFilterKernel<R>>()
            .expect("Real is sealed to f32 and f64")
    }

    /// Feature-vector width (`N` without RMFs, `2N` with).
    pub fn n_features(&self) -> usize {
        self.k64.n_features()
    }

    /// Raw samples per shot the kernels were compiled for.
    pub fn n_samples(&self) -> usize {
        self.k64.n_samples()
    }
}

/// Lazy cache of per-duration truncated kernels, keyed by the per-qubit bin
/// budgets.
///
/// The §5 duration sweeps evaluate the same discriminator at dozens of
/// budgets over thousands of shots each; before this cache every truncated
/// evaluation walked shot by shot through the per-bin demod path. Each
/// distinct budget vector now compiles one [`FusedFilterKernel`] (weights are
/// bin prefixes of the full kernel) on first use and reuses it for every
/// subsequent batch at that duration — a sweep is then one GEMM per point.
///
/// Thread-safe (`Mutex`-guarded map), so discriminators stay `Send + Sync`;
/// compilation happens *outside* the lock (concurrent misses on the same
/// budgets may compile twice, first insert wins — cache hits never wait on a
/// compile), and cloning a discriminator clones the already-compiled
/// kernels. The cache is unbounded by design: sweep workloads use a handful
/// of budget vectors, and each kernel is the size of the full-duration one
/// the design already owns — callers feeding *adversarially many* distinct
/// budget vectors should expect memory to grow linearly with them.
pub struct TruncatedKernelCache {
    kernels: Mutex<HashMap<Vec<usize>, Arc<FusedFilterKernel<f64>>>>,
}

impl TruncatedKernelCache {
    /// An empty cache.
    pub fn new() -> Self {
        TruncatedKernelCache {
            kernels: Mutex::new(HashMap::new()),
        }
    }

    /// The kernel for `budgets`, compiling and memoizing it on first use.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`FusedFilterKernel::new_truncated`].
    pub fn get_or_compile(
        &self,
        demod: &Demodulator,
        bank: &FilterBank,
        budgets: &[usize],
    ) -> Arc<FusedFilterKernel<f64>> {
        if let Some(kernel) = self
            .kernels
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(budgets)
        {
            return Arc::clone(kernel);
        }
        // Compile outside the lock so concurrent hits on other budgets (and
        // on this one, once inserted) never serialize behind the weight
        // build; if two threads race the same miss, the first insert wins.
        let kernel = Arc::new(FusedFilterKernel::new_truncated(demod, bank, budgets));
        let mut kernels = self.kernels.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(kernels.entry(budgets.to_vec()).or_insert(kernel))
    }

    /// The shared front half of every design's `discriminate_truncated_batch`
    /// override: packs `raws`, routes them through the cached per-duration
    /// kernel, and returns `(features, width)` — `features` row-major
    /// `[n_shots × width]`. Returns `None` when the batch is ragged or its
    /// sample count differs from `expected_samples` (the kernel's compiled
    /// window); callers then fall back to the per-shot truncated walk.
    pub fn features_for_batch(
        &self,
        demod: &Demodulator,
        bank: &FilterBank,
        raws: &[&IqTrace],
        budgets: &[usize],
        expected_samples: usize,
    ) -> Option<(Vec<f64>, usize)> {
        let batch: ShotBatch = ShotBatch::try_from_traces(raws)?;
        if batch.n_samples() != expected_samples {
            return None;
        }
        let kernel = self.get_or_compile(demod, bank, budgets);
        let mut features = Vec::new();
        kernel.features_batch(&batch, &mut features);
        Some((features, kernel.n_features()))
    }

    /// Number of distinct durations compiled so far.
    pub fn len(&self) -> usize {
        self.kernels.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no duration has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TruncatedKernelCache {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for TruncatedKernelCache {
    fn clone(&self) -> Self {
        TruncatedKernelCache {
            kernels: Mutex::new(
                self.kernels
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            ),
        }
    }
}

impl std::fmt::Debug for TruncatedKernelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TruncatedKernelCache")
            .field("durations", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readout_sim::{ChipConfig, Dataset};

    fn trained_setup(with_rmf: bool) -> (Dataset, Demodulator, FilterBank) {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 20, 91);
        let demod = Demodulator::new(&cfg);
        let split = ds.split(0.5, 0.0, 1);
        let mut trainer = crate::trainer::ReadoutTrainer::new(&ds, &split.train);
        let mfs = trainer.matched_filters().to_vec();
        let bank = if with_rmf {
            FilterBank::with_rmfs(mfs, trainer.relaxation_filters().to_vec())
        } else {
            FilterBank::new(mfs)
        };
        (ds, demod, bank)
    }

    fn max_rel_err(fused: &[f64], reference: &[f64]) -> f64 {
        fused
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b).abs() / b.abs().max(1.0))
            .fold(0.0, f64::max)
    }

    #[test]
    fn fused_features_match_per_shot_bank() {
        for with_rmf in [false, true] {
            let (ds, demod, bank) = trained_setup(with_rmf);
            let kernel: FusedFilterKernel = FusedFilterKernel::new(&demod, &bank);
            assert_eq!(kernel.n_features(), bank.n_features());
            let batch = ShotBatch::from_shots(&ds.shots[..16]);
            let mut fused = Vec::new();
            kernel.features_batch(&batch, &mut fused);
            for (s, shot) in ds.shots[..16].iter().enumerate() {
                let reference = bank.features(&demod.demodulate(&shot.raw));
                let row = &fused[s * kernel.n_features()..(s + 1) * kernel.n_features()];
                let err = max_rel_err(row, &reference);
                assert!(err <= 1e-12, "rmf={with_rmf} shot {s}: rel err {err:e}");
            }
        }
    }

    #[test]
    fn output_buffer_is_reusable() {
        let (ds, demod, bank) = trained_setup(false);
        let kernel: FusedFilterKernel = FusedFilterKernel::new(&demod, &bank);
        let batch = ShotBatch::from_shots(&ds.shots[..8]);
        let mut out = Vec::new();
        kernel.features_batch(&batch, &mut out);
        let first = out.clone();
        let small = ShotBatch::from_shots(&ds.shots[..2]);
        kernel.features_batch(&small, &mut out);
        assert_eq!(out.len(), 2 * kernel.n_features());
        assert_eq!(
            out[..],
            first[..out.len()],
            "same leading shots, same features"
        );
    }

    #[test]
    fn rounded_f32_kernel_is_bit_identical_to_a_recompiled_one() {
        let (_, demod, bank) = trained_setup(true);
        let recompiled: FusedFilterKernel<f32> = FusedFilterKernel::new(&demod, &bank);
        let rounded = PrecisionKernels::new(&demod, &bank).get::<f32>().clone();
        assert_eq!(recompiled, rounded);
    }

    #[test]
    fn precision_kernels_select_by_type_and_agree_across_precisions() {
        let (ds, demod, bank) = trained_setup(true);
        let kernels = PrecisionKernels::new(&demod, &bank);
        assert_eq!(kernels.n_features(), bank.n_features());
        let batch64: ShotBatch = ShotBatch::from_shots(&ds.shots[..8]);
        let batch32: ShotBatch<f32> = ShotBatch::from_shots(&ds.shots[..8]);
        let mut f64_out = Vec::new();
        kernels.get::<f64>().features_batch(&batch64, &mut f64_out);
        let mut f32_out = Vec::new();
        kernels.get::<f32>().features_batch(&batch32, &mut f32_out);
        assert_eq!(f64_out.len(), f32_out.len());
        for (a, b) in f64_out.iter().zip(&f32_out) {
            let rel = (a - f64::from(*b)).abs() / a.abs().max(1.0);
            assert!(rel < 1e-4, "f32 feature diverges: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "does not match the compiled kernel")]
    fn mismatched_batch_is_rejected() {
        let (ds, demod, bank) = trained_setup(false);
        let kernel: FusedFilterKernel = FusedFilterKernel::new(&demod, &bank);
        let cut = ds.shots[0].raw.truncated(10);
        let batch = ShotBatch::try_from_traces(&[&cut]).unwrap();
        let mut out = Vec::new();
        kernel.features_batch(&batch, &mut out);
    }
}
