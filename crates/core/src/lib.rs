//! HERQULES: hardware-efficient qubit-state discrimination.
//!
//! This crate is the reproduction of the paper's primary contribution — the
//! discriminator architectures of Table 1 and the machinery around them:
//!
//! * [`bank`] — the per-qubit filter bank: matched filters (MF), relaxation
//!   matched filters (RMF), and feature assembly with optional per-qubit
//!   readout-duration truncation;
//! * [`relabel`] — **Algorithm 1**: the semi-supervised labeling that mines
//!   relaxation traces out of the calibration set;
//! * [`designs`] — the discriminator designs compared in the paper:
//!   `centroid`, `mf`, `mf-svm`, `mf-nn`, `mf-rmf-svm`, `mf-rmf-nn` and the
//!   baseline raw-trace FNN of Lienhard et al.;
//! * [`trainer`] — one-stop training orchestration that demodulates a
//!   dataset once, trains the filter bank, and builds any design from it;
//! * [`metrics`] — assignment fidelities, geometric-mean cumulative accuracy
//!   (`F5Q`/`F4Q`), precision/recall, cross-fidelity, misclassification
//!   counts;
//! * [`duration`] — readout-duration sweeps (paper §5) that reuse a trained
//!   pipeline at shorter readout windows without retraining.
//!
//! # Example
//!
//! Train the flagship `mf-rmf-nn` design and measure its cumulative accuracy:
//!
//! ```
//! use readout_sim::{ChipConfig, Dataset};
//! use herqles_core::trainer::ReadoutTrainer;
//! use herqles_core::designs::DesignKind;
//! use herqles_core::metrics::evaluate;
//!
//! let config = ChipConfig::five_qubit_default();
//! let dataset = Dataset::generate(&config, 8, 42);
//! let split = dataset.split(0.5, 0.0, 1);
//! let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
//! let design = trainer.train(DesignKind::MfRmfNn);
//! let result = evaluate(design.as_ref(), &dataset, &split.test);
//! assert!(result.cumulative_accuracy() > 0.5);
//! ```

pub mod bank;
pub mod designs;
pub mod duration;
pub mod fused;
pub mod metrics;
pub mod relabel;
pub mod trainer;

pub use bank::FilterBank;
pub use designs::{DesignKind, Discriminator, PrecisionDiscriminator};
pub use fused::{FusedFilterKernel, PrecisionKernels, TruncatedKernelCache};
pub use herqles_num::Real;
pub use metrics::{evaluate, EvalResult};
pub use relabel::identify_relaxation_traces;
pub use trainer::ReadoutTrainer;
