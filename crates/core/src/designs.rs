//! The discriminator designs compared in the paper (Table 1).
//!
//! Every design implements [`Discriminator`]: raw multiplexed ADC trace in,
//! multi-qubit [`BasisState`] out. The designs differ in what happens between
//! demodulation and the final decision:
//!
//! | design | features | decision head | paper section |
//! |---|---|---|---|
//! | `centroid` | per-qubit MTV | nearest centroid | §3.4 (cloud default) |
//! | `mf` | per-qubit MF | scalar threshold | §4.2 |
//! | `mf-svm` | all MFs | per-qubit linear SVM | §4.2 |
//! | `mf-nn` | all MFs | small FNN | §4.2.1 |
//! | `mf-rmf-svm` | MFs + RMFs | per-qubit linear SVM | §4.3 |
//! | `mf-rmf-nn` | MFs + RMFs | small FNN | §4.3 (flagship) |
//! | `baseline-fnn` | raw 1000-dim trace | large FNN | §3.2 (Lienhard et al.) |

pub mod baseline;
pub mod centroid;
pub mod mf;
pub mod nn_head;
pub mod svm_head;

use std::fmt;

use herqles_num::Real;
use readout_sim::trace::{BasisState, IqTrace};
use readout_sim::ShotBatch;

pub use baseline::BaselineFnnDiscriminator;
pub use centroid::CentroidDiscriminator;
pub use mf::MfDiscriminator;
pub use nn_head::NnDiscriminator;
pub use svm_head::SvmDiscriminator;

/// Identifier of a discriminator design, used to request training and label
/// benchmark output rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Per-qubit nearest-centroid on the mean trace value.
    Centroid,
    /// Per-qubit matched filter + threshold.
    Mf,
    /// Matched filters + per-qubit linear SVMs.
    MfSvm,
    /// Matched filters + small FNN.
    MfNn,
    /// Matched + relaxation matched filters + per-qubit linear SVMs.
    MfRmfSvm,
    /// Matched + relaxation matched filters + small FNN (the HERQULES
    /// flagship).
    MfRmfNn,
    /// The baseline large FNN on raw ADC traces (Lienhard et al.).
    BaselineFnn,
}

impl DesignKind {
    /// All designs in Table 1 order.
    pub const ALL: [DesignKind; 7] = [
        DesignKind::BaselineFnn,
        DesignKind::Centroid,
        DesignKind::Mf,
        DesignKind::MfSvm,
        DesignKind::MfNn,
        DesignKind::MfRmfSvm,
        DesignKind::MfRmfNn,
    ];

    /// The paper's name for the design.
    pub fn label(self) -> &'static str {
        match self {
            DesignKind::Centroid => "centroid",
            DesignKind::Mf => "mf",
            DesignKind::MfSvm => "mf-svm",
            DesignKind::MfNn => "mf-nn",
            DesignKind::MfRmfSvm => "mf-rmf-svm",
            DesignKind::MfRmfNn => "mf-rmf-nn",
            DesignKind::BaselineFnn => "baseline",
        }
    }

    /// Whether the design uses relaxation matched filters.
    pub fn uses_rmf(self) -> bool {
        matches!(self, DesignKind::MfRmfSvm | DesignKind::MfRmfNn)
    }
}

impl fmt::Display for DesignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A trained multi-qubit state discriminator.
///
/// Implementations are `Send + Sync` so evaluation can be parallelized.
pub trait Discriminator: Send + Sync {
    /// The design's display name (Table 1 row label).
    fn name(&self) -> &str;

    /// Number of qubits discriminated per shot.
    fn n_qubits(&self) -> usize;

    /// Discriminates one raw multiplexed ADC trace.
    fn discriminate(&self, raw: &IqTrace) -> BasisState;

    /// Discriminates a batch of borrowed traces.
    ///
    /// When the traces share one length they are packed into a [`ShotBatch`]
    /// and routed through [`Discriminator::discriminate_shot_batch`] — the
    /// fused, allocation-free fast path every design overrides. Ragged
    /// batches fall back to the per-shot loop.
    fn discriminate_batch(&self, raws: &[&IqTrace]) -> Vec<BasisState> {
        match ShotBatch::try_from_traces(raws) {
            Some(batch) => self.discriminate_shot_batch(&batch),
            None => raws.iter().map(|r| self.discriminate(r)).collect(),
        }
    }

    /// Discriminates a packed [`ShotBatch`] (the inference hot path).
    ///
    /// The default materializes each shot and calls
    /// [`Discriminator::discriminate`]; designs override it with fused
    /// batched kernels that allocate nothing per shot. Duration-agnostic
    /// designs fall back to the per-shot path when the batch length does not
    /// match their trained readout window (e.g. truncated-duration batches);
    /// designs welded to one duration (the baseline FNN, whose input layer
    /// *is* the window) panic on mismatched batches exactly as their
    /// [`Discriminator::discriminate`] does.
    fn discriminate_shot_batch(&self, batch: &ShotBatch) -> Vec<BasisState> {
        (0..batch.n_shots())
            .map(|s| self.discriminate(&batch.trace(s)))
            .collect()
    }

    /// Discriminates a packed [`ShotBatch`] into caller-owned buffers — the
    /// streaming hot path: `out` receives one state per shot and `scratch` is
    /// a feature workspace, both reused across calls so warm steady-state
    /// rounds allocate nothing.
    ///
    /// The default clears `out` and delegates to
    /// [`Discriminator::discriminate_shot_batch`] (which allocates its own
    /// result vector); designs with fused kernels override it to write
    /// through `scratch` with zero per-call allocation. Decisions are always
    /// identical to [`Discriminator::discriminate_shot_batch`].
    fn discriminate_shot_batch_into(
        &self,
        batch: &ShotBatch,
        scratch: &mut Vec<f64>,
        out: &mut Vec<BasisState>,
    ) {
        let _ = scratch;
        out.clear();
        out.extend(self.discriminate_shot_batch(batch));
    }

    /// Writes the per-qubit *soft margins* of one feature row into `out` and
    /// returns `true`, or returns `false` when the design has no calibrated
    /// margin notion (the default).
    ///
    /// A soft margin is the distance of qubit `q`'s decision statistic from
    /// its decision boundary, in feature units: large when the shot sits deep
    /// inside a calibrated cloud, shrinking toward zero as channel drift
    /// pushes shots onto the boundary. Streaming health monitors feed on it
    /// as a leading indicator of discriminator degradation — margins collapse
    /// *before* the error rate visibly rises.
    ///
    /// `features` is one shot's feature row exactly as produced by the
    /// design's batch path (`scratch` chunk of
    /// [`Discriminator::discriminate_shot_batch_into`]); implementations must
    /// return `false` rather than panic on a row of unexpected width.
    fn soft_margins(&self, features: &[f64], out: &mut [f64]) -> bool {
        let _ = (features, out);
        false
    }

    /// Discriminates with per-qubit readout-duration budgets, expressed in
    /// demodulation bins.
    ///
    /// Returns `None` if the design cannot handle truncated inputs without
    /// retraining — which is exactly the baseline FNN's limitation the paper
    /// highlights (§5.2).
    fn discriminate_truncated(&self, _raw: &IqTrace, _bins: &[usize]) -> Option<BasisState> {
        None
    }

    /// Batch version of [`Discriminator::discriminate_truncated`].
    fn discriminate_truncated_batch(
        &self,
        raws: &[&IqTrace],
        bins: &[usize],
    ) -> Option<Vec<BasisState>> {
        raws.iter()
            .map(|r| self.discriminate_truncated(r, bins))
            .collect()
    }
}

/// Batched discrimination at an explicit pipeline precision `R` ([`Real`]).
///
/// [`Discriminator`]'s own batch methods are fixed at `f64` so the trait
/// stays object-safe and every pre-generic call site (including
/// `dyn Discriminator` pipelines) keeps its exact behavior. This companion
/// trait carries the precision-generic entry points:
///
/// * **`R = f64`** is blanket-implemented for *every* discriminator by
///   delegating to the `f64` methods — a `ShotBatch<f64>` takes exactly the
///   historical path, bit for bit.
/// * **`R = f32`** is implemented per design; the fused-kernel designs
///   (`mf`, `mf-svm`, `mf-nn` and their RMF variants) run the demod +
///   filter GEMM at single precision, the strawman heads (`centroid`,
///   `baseline`) demodulate at `f32` / widen to their trained `f64` heads.
///
/// The streaming [`CycleEngine`](https://docs.rs/herqles-stream)'s round loop
/// is generic over this trait, which is what makes an end-to-end `f32`
/// readout → syndrome → decode cycle possible.
pub trait PrecisionDiscriminator<R: Real>: Discriminator {
    /// Discriminates a packed `ShotBatch<R>` into caller-owned buffers (the
    /// precision-generic mirror of
    /// [`Discriminator::discriminate_shot_batch_into`]): `out` receives one
    /// state per shot and `scratch` is a feature workspace at pipeline
    /// precision, both reused across calls.
    fn discriminate_shot_batch_r_into(
        &self,
        batch: &ShotBatch<R>,
        scratch: &mut Vec<R>,
        out: &mut Vec<BasisState>,
    );

    /// Discriminates a packed `ShotBatch<R>` (the precision-generic mirror
    /// of [`Discriminator::discriminate_shot_batch`]).
    fn discriminate_shot_batch_r(&self, batch: &ShotBatch<R>) -> Vec<BasisState> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.discriminate_shot_batch_r_into(batch, &mut scratch, &mut out);
        out
    }
}

/// Every discriminator handles `f64` batches through its ordinary
/// [`Discriminator`] methods — including trait objects, so a
/// `&dyn Discriminator` drives a default-precision streaming engine
/// unchanged.
impl<T: Discriminator + ?Sized> PrecisionDiscriminator<f64> for T {
    fn discriminate_shot_batch_r_into(
        &self,
        batch: &ShotBatch,
        scratch: &mut Vec<f64>,
        out: &mut Vec<BasisState>,
    ) {
        self.discriminate_shot_batch_into(batch, scratch, out);
    }

    fn discriminate_shot_batch_r(&self, batch: &ShotBatch) -> Vec<BasisState> {
        self.discriminate_shot_batch(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(DesignKind::MfRmfNn.label(), "mf-rmf-nn");
        assert_eq!(DesignKind::BaselineFnn.to_string(), "baseline");
    }

    #[test]
    fn rmf_usage_flags() {
        assert!(DesignKind::MfRmfNn.uses_rmf());
        assert!(DesignKind::MfRmfSvm.uses_rmf());
        assert!(!DesignKind::MfNn.uses_rmf());
        assert!(!DesignKind::BaselineFnn.uses_rmf());
    }

    #[test]
    fn all_contains_every_variant_once() {
        assert_eq!(DesignKind::ALL.len(), 7);
        for (i, a) in DesignKind::ALL.iter().enumerate() {
            for b in &DesignKind::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
