//! Readout-quality metrics: assignment fidelity, cumulative accuracy,
//! precision/recall, cross-fidelity, and misclassification counts.
//!
//! All metrics are derived from the stored `(prepared, predicted)` pairs of
//! one evaluation pass, so a single [`evaluate`] call feeds Table 1
//! (accuracies), Table 2 (cross-fidelity), Fig. 4(b)/Fig. 10
//! (misclassification counts), and the precision/recall numbers of §4.3.2.

use readout_sim::dataset::Dataset;
use readout_sim::trace::BasisState;
use readout_sim::ShotBatch;

use crate::designs::Discriminator;

/// Outcome of evaluating a discriminator on a labeled shot set.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    n_qubits: usize,
    /// `(prepared, predicted)` per evaluated shot.
    outcomes: Vec<(BasisState, BasisState)>,
}

impl EvalResult {
    /// Builds a result from raw outcome pairs.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty or `n_qubits == 0`.
    pub fn from_outcomes(n_qubits: usize, outcomes: Vec<(BasisState, BasisState)>) -> Self {
        assert!(n_qubits > 0, "need at least one qubit");
        assert!(!outcomes.is_empty(), "need at least one outcome");
        EvalResult { n_qubits, outcomes }
    }

    /// Number of evaluated shots.
    pub fn n_shots(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The raw `(prepared, predicted)` pairs.
    pub fn outcomes(&self) -> &[(BasisState, BasisState)] {
        &self.outcomes
    }

    /// Assignment fidelity of qubit `q`: fraction of shots whose predicted
    /// bit `q` matches the prepared bit.
    pub fn qubit_accuracy(&self, q: usize) -> f64 {
        let correct = self
            .outcomes
            .iter()
            .filter(|(prep, pred)| prep.qubit(q) == pred.qubit(q))
            .count();
        correct as f64 / self.n_shots() as f64
    }

    /// Per-qubit accuracies, qubit 0 first.
    pub fn per_qubit_accuracy(&self) -> Vec<f64> {
        (0..self.n_qubits).map(|q| self.qubit_accuracy(q)).collect()
    }

    /// Fraction of shots where the entire basis state was assigned correctly.
    pub fn state_accuracy(&self) -> f64 {
        let correct = self
            .outcomes
            .iter()
            .filter(|(prep, pred)| prep == pred)
            .count();
        correct as f64 / self.n_shots() as f64
    }

    /// Cumulative accuracy: the geometric mean of per-qubit accuracies
    /// (`F5Q = (F1 F2 F3 F4 F5)^{1/5}` in the paper).
    pub fn cumulative_accuracy(&self) -> f64 {
        geometric_mean(&self.per_qubit_accuracy())
    }

    /// Cumulative accuracy excluding the listed qubits (the paper's `F4Q`
    /// drops qubit 2, index 1).
    pub fn cumulative_accuracy_excluding(&self, excluded: &[usize]) -> f64 {
        let accs: Vec<f64> = (0..self.n_qubits)
            .filter(|q| !excluded.contains(q))
            .map(|q| self.qubit_accuracy(q))
            .collect();
        geometric_mean(&accs)
    }

    /// `(ground_misclassified, excited_misclassified)` counts for qubit `q`:
    /// shots prepared `0` but read `1`, and prepared `1` but read `0`
    /// (Fig. 10's two bars).
    pub fn misclassification_counts(&self, q: usize) -> (usize, usize) {
        let mut ground_err = 0;
        let mut excited_err = 0;
        for (prep, pred) in &self.outcomes {
            match (prep.qubit(q), pred.qubit(q)) {
                (false, true) => ground_err += 1,
                (true, false) => excited_err += 1,
                _ => {}
            }
        }
        (ground_err, excited_err)
    }

    /// Precision of the excited-state prediction for qubit `q`:
    /// `TP / (TP + FP)`. Returns 1.0 when the qubit was never read excited.
    pub fn precision(&self, q: usize) -> f64 {
        let (mut tp, mut fp) = (0usize, 0usize);
        for (prep, pred) in &self.outcomes {
            if pred.qubit(q) {
                if prep.qubit(q) {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        }
    }

    /// Recall of the excited-state prediction for qubit `q`:
    /// `TP / (TP + FN)`. Returns 1.0 when the qubit was never prepared
    /// excited.
    pub fn recall(&self, q: usize) -> f64 {
        let (mut tp, mut fnn) = (0usize, 0usize);
        for (prep, pred) in &self.outcomes {
            if prep.qubit(q) {
                if pred.qubit(q) {
                    tp += 1;
                } else {
                    fnn += 1;
                }
            }
        }
        if tp + fnn == 0 {
            1.0
        } else {
            tp as f64 / (tp + fnn) as f64
        }
    }

    /// Cross-fidelity between measured qubit `i` and prepared qubit `j`
    /// (paper §4.3.3): `F^CF_{ij} = 1 − [P(e_i | 0_j) + P(g_i | 1_j)]`.
    ///
    /// Uncorrelated, balanced readout gives values near zero; crosstalk
    /// pushes the magnitude up.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn cross_fidelity(&self, i: usize, j: usize) -> f64 {
        assert!(i != j, "cross-fidelity is defined for distinct qubits");
        assert!(
            i < self.n_qubits && j < self.n_qubits,
            "qubit index out of range"
        );
        let (mut e_i_given_0j, mut n_0j) = (0usize, 0usize);
        let (mut g_i_given_1j, mut n_1j) = (0usize, 0usize);
        for (prep, pred) in &self.outcomes {
            if prep.qubit(j) {
                n_1j += 1;
                if !pred.qubit(i) {
                    g_i_given_1j += 1;
                }
            } else {
                n_0j += 1;
                if pred.qubit(i) {
                    e_i_given_0j += 1;
                }
            }
        }
        let p_e = e_i_given_0j as f64 / n_0j.max(1) as f64;
        let p_g = g_i_given_1j as f64 / n_1j.max(1) as f64;
        1.0 - (p_e + p_g)
    }

    /// Mean of `|F^CF_{ij}|` over all ordered pairs with `|i − j| == dist`
    /// (one row of Table 2).
    ///
    /// # Panics
    ///
    /// Panics if no pair has the requested distance.
    pub fn mean_abs_cross_fidelity(&self, dist: usize) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..self.n_qubits {
            for j in 0..self.n_qubits {
                if i != j && i.abs_diff(j) == dist {
                    sum += self.cross_fidelity(i, j).abs();
                    count += 1;
                }
            }
        }
        assert!(count > 0, "no qubit pair at distance {dist}");
        sum / count as f64
    }
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Evaluates a discriminator over the dataset shots at `indices`, comparing
/// predictions against the prepared labels.
///
/// # Panics
///
/// Panics if `indices` is empty or out of range.
pub fn evaluate(disc: &dyn Discriminator, dataset: &Dataset, indices: &[usize]) -> EvalResult {
    assert!(!indices.is_empty(), "evaluation set must be non-empty");
    // Pack once, discriminate through the fused batched path.
    let batch = ShotBatch::from_dataset(dataset, indices);
    let preds = disc.discriminate_shot_batch(&batch);
    let outcomes = indices
        .iter()
        .zip(preds)
        .map(|(&i, pred)| (dataset.shots[i].prepared, pred))
        .collect();
    EvalResult::from_outcomes(dataset.n_qubits(), outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(bits: u32) -> BasisState {
        BasisState::new(bits)
    }

    fn perfect_result() -> EvalResult {
        let outcomes = (0..4u32).map(|b| (s(b), s(b))).collect();
        EvalResult::from_outcomes(2, outcomes)
    }

    #[test]
    fn perfect_predictions_score_one() {
        let r = perfect_result();
        assert_eq!(r.per_qubit_accuracy(), vec![1.0, 1.0]);
        assert_eq!(r.state_accuracy(), 1.0);
        assert_eq!(r.cumulative_accuracy(), 1.0);
        assert_eq!(r.misclassification_counts(0), (0, 0));
        assert_eq!(r.precision(0), 1.0);
        assert_eq!(r.recall(1), 1.0);
    }

    #[test]
    fn single_bit_error_is_attributed() {
        // Prepared 0b00..0b11, one error: 0b01 read as 0b00 (qubit 0 excited
        // read ground).
        let outcomes = vec![
            (s(0b00), s(0b00)),
            (s(0b01), s(0b00)),
            (s(0b10), s(0b10)),
            (s(0b11), s(0b11)),
        ];
        let r = EvalResult::from_outcomes(2, outcomes);
        assert_eq!(r.qubit_accuracy(0), 0.75);
        assert_eq!(r.qubit_accuracy(1), 1.0);
        assert_eq!(r.state_accuracy(), 0.75);
        assert_eq!(r.misclassification_counts(0), (0, 1));
        // Recall of qubit 0's excited state: 1 of 2 prepared-excited read
        // correctly.
        assert_eq!(r.recall(0), 0.5);
        assert_eq!(r.precision(0), 1.0);
    }

    #[test]
    fn cumulative_accuracy_is_geometric_mean() {
        let outcomes = vec![
            (s(0b00), s(0b00)),
            (s(0b01), s(0b00)),
            (s(0b10), s(0b10)),
            (s(0b11), s(0b11)),
        ];
        let r = EvalResult::from_outcomes(2, outcomes);
        let expect = (0.75f64 * 1.0).sqrt();
        assert!((r.cumulative_accuracy() - expect).abs() < 1e-12);
        assert_eq!(r.cumulative_accuracy_excluding(&[0]), 1.0);
    }

    #[test]
    fn cross_fidelity_zero_for_uncorrelated_balanced_readout() {
        // Predictions equal preparations: P(e_i|0_j) and P(g_i|1_j) are the
        // marginals, each 0.5 over all four balanced states.
        let r = perfect_result();
        assert!(r.cross_fidelity(0, 1).abs() < 1e-12);
        assert!(r.mean_abs_cross_fidelity(1) < 1e-12);
    }

    #[test]
    fn cross_fidelity_detects_correlated_errors() {
        // Qubit 0's prediction copies qubit 1's prepared state → maximal
        // correlation.
        let outcomes = vec![
            (s(0b00), s(0b00)),
            (s(0b01), s(0b01)),
            (s(0b10), s(0b11)),
            (s(0b11), s(0b11)),
        ];
        let r = EvalResult::from_outcomes(2, outcomes);
        assert!(r.cross_fidelity(0, 1).abs() > 0.4);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[0.5]), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geometric_mean_empty_panics() {
        let _ = geometric_mean(&[]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_cross_fidelity_panics() {
        let _ = perfect_result().cross_fidelity(1, 1);
    }

    #[test]
    #[should_panic(expected = "no qubit pair")]
    fn missing_distance_panics() {
        let _ = perfect_result().mean_abs_cross_fidelity(5);
    }
}
