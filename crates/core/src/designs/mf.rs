//! The `mf` design: per-qubit matched filter + scalar threshold (paper §4.2).

use herqles_num::Real;
use readout_classifiers::ThresholdDiscriminator;
use readout_dsp::Demodulator;
use readout_sim::trace::{BasisState, IqTrace};
use readout_sim::ShotBatch;

use crate::bank::FilterBank;
use crate::designs::{Discriminator, PrecisionDiscriminator};
use crate::fused::{PrecisionKernels, TruncatedKernelCache};

/// Matched-filter discriminator: one MF and one threshold per qubit, no
/// crosstalk compensation. The hardware-cheapest design and the accuracy
/// floor of Table 1.
#[derive(Debug, Clone)]
pub struct MfDiscriminator {
    demod: Demodulator,
    bank: FilterBank,
    kernels: PrecisionKernels,
    truncated: TruncatedKernelCache,
    /// Per-qubit thresholds; class A of each threshold is "excited".
    thresholds: Vec<ThresholdDiscriminator>,
}

impl MfDiscriminator {
    /// Builds the discriminator.
    ///
    /// # Panics
    ///
    /// Panics if the bank has RMFs (the plain `mf` design has none) or the
    /// threshold count differs from the qubit count.
    pub fn new(
        demod: Demodulator,
        bank: FilterBank,
        thresholds: Vec<ThresholdDiscriminator>,
    ) -> Self {
        assert!(
            !bank.has_rmfs(),
            "the mf design uses plain matched filters only"
        );
        assert_eq!(
            thresholds.len(),
            bank.n_qubits(),
            "one threshold per qubit required"
        );
        let kernels = PrecisionKernels::new(&demod, &bank);
        MfDiscriminator {
            demod,
            bank,
            kernels,
            truncated: TruncatedKernelCache::new(),
            thresholds,
        }
    }

    /// The underlying filter bank.
    pub fn bank(&self) -> &FilterBank {
        &self.bank
    }

    /// The demodulator the design was trained with.
    pub fn demod(&self) -> &Demodulator {
        &self.demod
    }

    /// The per-qubit decision thresholds (class A = "excited").
    pub fn thresholds(&self) -> &[ThresholdDiscriminator] {
        &self.thresholds
    }

    fn classify_features<R: Real>(&self, features: &[R]) -> BasisState {
        let mut state = BasisState::new(0);
        for (q, threshold) in self.thresholds.iter().enumerate() {
            state = state.with_qubit(q, threshold.classify_a(features[q].to_f64()));
        }
        state
    }

    /// The fused batch path at any pipeline precision: one demod + MF GEMM
    /// into the caller's scratch, then per-qubit thresholds. `R = f64` is
    /// the historical hot path bit for bit; `R = f32` runs the same kernel
    /// at single precision and is just as allocation-free once warm.
    fn batch_into_r<R: Real>(
        &self,
        batch: &ShotBatch<R>,
        scratch: &mut Vec<R>,
        out: &mut Vec<BasisState>,
    ) {
        out.clear();
        let kernel = self.kernels.get::<R>();
        if !kernel.matches(batch) {
            out.extend((0..batch.n_shots()).map(|s| self.discriminate(&batch.trace(s))));
            return;
        }
        // Fused demod + MF GEMM into the caller's scratch: within warm
        // capacity this whole path performs zero heap allocation.
        kernel.features_batch(batch, scratch);
        out.extend(
            scratch
                .chunks(kernel.n_features().max(1))
                .map(|f| self.classify_features(f)),
        );
    }
}

impl PrecisionDiscriminator<f32> for MfDiscriminator {
    fn discriminate_shot_batch_r_into(
        &self,
        batch: &ShotBatch<f32>,
        scratch: &mut Vec<f32>,
        out: &mut Vec<BasisState>,
    ) {
        self.batch_into_r(batch, scratch, out);
    }
}

impl Discriminator for MfDiscriminator {
    fn name(&self) -> &str {
        "mf"
    }

    fn n_qubits(&self) -> usize {
        self.bank.n_qubits()
    }

    fn discriminate(&self, raw: &IqTrace) -> BasisState {
        let traces = self.demod.demodulate(raw);
        self.classify_features(&self.bank.features(&traces))
    }

    fn discriminate_shot_batch(&self, batch: &ShotBatch) -> Vec<BasisState> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.discriminate_shot_batch_into(batch, &mut scratch, &mut out);
        out
    }

    fn discriminate_shot_batch_into(
        &self,
        batch: &ShotBatch,
        scratch: &mut Vec<f64>,
        out: &mut Vec<BasisState>,
    ) {
        self.batch_into_r(batch, scratch, out);
    }

    fn soft_margins(&self, features: &[f64], out: &mut [f64]) -> bool {
        if features.len() < self.thresholds.len() || out.len() < self.thresholds.len() {
            return false;
        }
        for (q, threshold) in self.thresholds.iter().enumerate() {
            out[q] = (features[q] - threshold.threshold()).abs();
        }
        true
    }

    fn discriminate_truncated(&self, raw: &IqTrace, bins: &[usize]) -> Option<BasisState> {
        let traces = self.demod.demodulate(raw);
        Some(self.classify_features(&self.bank.features_truncated(&traces, bins)))
    }

    fn discriminate_truncated_batch(
        &self,
        raws: &[&IqTrace],
        bins: &[usize],
    ) -> Option<Vec<BasisState>> {
        // Full-length batches route through one cached per-duration fused
        // kernel (prefix weights) — a single GEMM instead of a per-shot
        // demod walk; ragged or shortened traces fall back per shot.
        match self.truncated.features_for_batch(
            &self.demod,
            &self.bank,
            raws,
            bins,
            self.kernels.n_samples(),
        ) {
            Some((features, width)) => Some(
                features
                    .chunks(width.max(1))
                    .map(|f| self.classify_features(f))
                    .collect(),
            ),
            None => raws
                .iter()
                .map(|r| self.discriminate_truncated(r, bins))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readout_dsp::filters::MatchedFilter;
    use readout_sim::{ChipConfig, Dataset};

    /// Trains a plain-MF discriminator directly (the trainer crate-level path
    /// is exercised in `trainer.rs` tests).
    fn train_mf(dataset: &Dataset) -> MfDiscriminator {
        let demod = Demodulator::new(&dataset.config);
        let n = dataset.n_qubits();
        let demod_traces: Vec<Vec<IqTrace>> = dataset
            .shots
            .iter()
            .map(|s| demod.demodulate(&s.raw))
            .collect();
        let mut mfs = Vec::new();
        for q in 0..n {
            let ground: Vec<&IqTrace> = dataset
                .shots
                .iter()
                .zip(&demod_traces)
                .filter(|(s, _)| !s.prepared.qubit(q))
                .map(|(_, tr)| &tr[q])
                .collect();
            let excited: Vec<&IqTrace> = dataset
                .shots
                .iter()
                .zip(&demod_traces)
                .filter(|(s, _)| s.prepared.qubit(q))
                .map(|(_, tr)| &tr[q])
                .collect();
            // Envelope oriented excited-minus-ground so positive ⇒ excited.
            mfs.push(MatchedFilter::train(&excited, &ground).unwrap());
        }
        let bank = FilterBank::new(mfs);
        let mut thresholds = Vec::new();
        for q in 0..n {
            let mut out_e = Vec::new();
            let mut out_g = Vec::new();
            for (shot, traces) in dataset.shots.iter().zip(&demod_traces) {
                let v = bank.mf(q).apply(&traces[q]);
                if shot.prepared.qubit(q) {
                    out_e.push(v);
                } else {
                    out_g.push(v);
                }
            }
            thresholds.push(ThresholdDiscriminator::train(&out_e, &out_g));
        }
        MfDiscriminator::new(demod, bank, thresholds)
    }

    #[test]
    fn beats_chance_substantially() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 50, 13);
        let disc = train_mf(&ds);
        let correct = ds
            .shots
            .iter()
            .filter(|s| disc.discriminate(&s.raw) == s.prepared)
            .count();
        let acc = correct as f64 / ds.shots.len() as f64;
        assert!(acc > 0.85, "state accuracy {acc}");
        assert_eq!(disc.name(), "mf");
    }

    #[test]
    fn truncation_degrades_gracefully() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 40, 14);
        let disc = train_mf(&ds);
        let acc = |bins: usize| -> f64 {
            let correct = ds
                .shots
                .iter()
                .filter(|s| {
                    disc.discriminate_truncated(&s.raw, &[bins, bins]).unwrap() == s.prepared
                })
                .count();
            correct as f64 / ds.shots.len() as f64
        };
        let full = acc(20);
        let tiny = acc(2);
        assert!(full > tiny, "full {full} vs tiny {tiny}");
    }

    #[test]
    #[should_panic(expected = "plain matched filters")]
    fn bank_with_rmfs_is_rejected() {
        let cfg = ChipConfig::two_qubit_test();
        let demod = Demodulator::new(&cfg);
        let flat = MatchedFilter::from_envelope(IqTrace::zeros(20));
        let bank =
            FilterBank::with_rmfs(vec![flat.clone(), flat.clone()], vec![flat.clone(), flat]);
        let th = ThresholdDiscriminator::train(&[1.0], &[-1.0]);
        let _ = MfDiscriminator::new(demod, bank, vec![th, th]);
    }
}
