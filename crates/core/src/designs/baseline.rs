//! The baseline design: a large FNN on raw ADC traces (Lienhard et al.,
//! paper §3.2).
//!
//! The raw `[I…, Q…]` waveform (1000 samples for the 1 µs window at
//! 500 MS/s) feeds a 1000-500-250-32 network. No demodulation, no filters —
//! the network learns everything, which is why it is accurate, enormous, and
//! welded to one readout duration: its input layer *is* the duration, so
//! [`Discriminator::discriminate_truncated`] returns `None`.

use readout_nn::{Matrix, Mlp, Standardizer};
use readout_sim::trace::{BasisState, IqTrace};
use readout_sim::ShotBatch;

use crate::designs::{Discriminator, PrecisionDiscriminator};

/// The baseline large-FNN discriminator.
#[derive(Debug, Clone)]
pub struct BaselineFnnDiscriminator {
    standardizer: Standardizer,
    net: Mlp,
    n_qubits: usize,
    expected_samples: usize,
}

impl BaselineFnnDiscriminator {
    /// The paper's hidden sizes for a raw input of `2·samples` values and an
    /// `n`-qubit output: `1000-500-250-32` scaled with the input.
    pub fn layer_sizes(n_samples: usize, n_qubits: usize) -> Vec<usize> {
        let input = 2 * n_samples;
        vec![input, input / 2, input / 4, 1 << n_qubits]
    }

    /// Builds the discriminator.
    ///
    /// # Panics
    ///
    /// Panics if the network widths are inconsistent with the sample count or
    /// qubit count, or the standardizer dimension differs from the input.
    pub fn new(
        standardizer: Standardizer,
        net: Mlp,
        n_qubits: usize,
        expected_samples: usize,
    ) -> Self {
        assert_eq!(
            net.input_size(),
            2 * expected_samples,
            "network input must be 2× the raw sample count"
        );
        assert_eq!(
            net.output_size(),
            1 << n_qubits,
            "network output must enumerate the basis states"
        );
        assert_eq!(
            standardizer.dim(),
            net.input_size(),
            "standardizer must match the input width"
        );
        BaselineFnnDiscriminator {
            standardizer,
            net,
            n_qubits,
            expected_samples,
        }
    }

    /// The trained network (for hardware-cost estimation).
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// The raw sample count the input layer was sized for.
    pub fn expected_samples(&self) -> usize {
        self.expected_samples
    }

    fn features_of(&self, raw: &IqTrace) -> Vec<f64> {
        assert_eq!(
            raw.len(),
            self.expected_samples,
            "baseline FNN requires full-duration traces; retrain for other durations"
        );
        self.standardizer.transform(&raw.to_feature_vec())
    }
}

impl Discriminator for BaselineFnnDiscriminator {
    fn name(&self) -> &str {
        "baseline"
    }

    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn discriminate(&self, raw: &IqTrace) -> BasisState {
        BasisState::new(self.net.predict(&self.features_of(raw)) as u32)
    }

    fn discriminate_shot_batch(&self, batch: &ShotBatch) -> Vec<BasisState> {
        if batch.is_empty() {
            return Vec::new();
        }
        assert_eq!(
            batch.n_samples(),
            self.expected_samples,
            "baseline FNN requires full-duration traces; retrain for other durations"
        );
        // A batch row already is the network's `[I…, Q…]` input vector:
        // standardize the copied plane in place and run one forward pass.
        let mut inputs = batch.as_slice().to_vec();
        self.standardizer.transform_rows_inplace(&mut inputs);
        let x = Matrix::from_vec(batch.n_shots(), batch.row_width(), inputs);
        self.net
            .predict_rows(&x)
            .into_iter()
            .map(|c| BasisState::new(c as u32))
            .collect()
    }

    // discriminate_truncated deliberately keeps the default `None`: the
    // baseline cannot shorten readout without retraining (paper §5.2).
}

impl PrecisionDiscriminator<f32> for BaselineFnnDiscriminator {
    /// The baseline's input layer *is* the raw trace, and its network is
    /// trained in `f64` — so an `f32` batch is widened wholesale before the
    /// forward pass. There is no narrow-precision win to be had here; the
    /// impl exists so every Table 1 design drives the precision-generic
    /// streaming engine.
    fn discriminate_shot_batch_r_into(
        &self,
        batch: &ShotBatch<f32>,
        _scratch: &mut Vec<f32>,
        out: &mut Vec<BasisState>,
    ) {
        out.clear();
        if batch.is_empty() {
            return;
        }
        assert_eq!(
            batch.n_samples(),
            self.expected_samples,
            "baseline FNN requires full-duration traces; retrain for other durations"
        );
        let mut inputs: Vec<f64> = batch.as_slice().iter().map(|&v| f64::from(v)).collect();
        self.standardizer.transform_rows_inplace(&mut inputs);
        let x = Matrix::from_vec(batch.n_shots(), batch.row_width(), inputs);
        out.extend(
            self.net
                .predict_rows(&x)
                .into_iter()
                .map(|c| BasisState::new(c as u32)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_sizes_match_paper_for_full_window() {
        assert_eq!(
            BaselineFnnDiscriminator::layer_sizes(500, 5),
            vec![1000, 500, 250, 32]
        );
    }

    #[test]
    fn truncation_is_unsupported() {
        let st = Standardizer::fit(&[vec![0.0; 8]]);
        let net = Mlp::new(&[8, 4, 2, 4], 0);
        let disc = BaselineFnnDiscriminator::new(st, net, 2, 4);
        let raw = IqTrace::zeros(4);
        assert!(disc.discriminate_truncated(&raw, &[1, 1]).is_none());
        assert_eq!(disc.name(), "baseline");
        assert_eq!(disc.n_qubits(), 2);
    }

    #[test]
    #[should_panic(expected = "full-duration traces")]
    fn short_trace_panics() {
        let st = Standardizer::fit(&[vec![0.0; 8]]);
        let net = Mlp::new(&[8, 4, 2, 4], 0);
        let disc = BaselineFnnDiscriminator::new(st, net, 2, 4);
        let _ = disc.discriminate(&IqTrace::zeros(3));
    }

    #[test]
    #[should_panic(expected = "2× the raw sample count")]
    fn inconsistent_input_width_panics() {
        let st = Standardizer::fit(&[vec![0.0; 8]]);
        let net = Mlp::new(&[8, 4, 4], 0);
        let _ = BaselineFnnDiscriminator::new(st, net, 2, 5);
    }
}
