//! The `mf-nn` / `mf-rmf-nn` designs: a small FNN over filter-bank features.
//!
//! The network follows the paper's `F → 2F → 4F → 2F → 2^N` architecture
//! (§4.2.1) where `F` is the feature width (`N` for `mf-nn`, `2N` for
//! `mf-rmf-nn`). The output layer enumerates all basis states, so one
//! inference classifies every qubit jointly and the hidden layers can learn
//! crosstalk and relaxation corrections.

use readout_dsp::Demodulator;
use readout_nn::{Matrix, Mlp, Standardizer};
use readout_sim::trace::{BasisState, IqTrace};
use readout_sim::ShotBatch;

use crate::bank::FilterBank;
use crate::designs::{Discriminator, PrecisionDiscriminator};
use crate::fused::{PrecisionKernels, TruncatedKernelCache};

/// Small-FNN discriminator over filter-bank features.
#[derive(Debug, Clone)]
pub struct NnDiscriminator {
    demod: Demodulator,
    bank: FilterBank,
    kernels: PrecisionKernels,
    truncated: TruncatedKernelCache,
    standardizer: Standardizer,
    net: Mlp,
    name: &'static str,
}

impl NnDiscriminator {
    /// The paper's layer sizes for a feature width `f` and `n`-qubit output.
    ///
    /// Hidden widths are floored at 8 units: at paper scale (`f ≥ 4`) this
    /// is exactly the `F → 2F → 4F → 2F → 2^N` architecture of §4.2.1, while
    /// degenerate tiny feature widths (e.g. the 2-feature `mf-nn` head on a
    /// two-qubit test chip) keep enough trunk width that ReLU units cannot
    /// die wholesale during training.
    pub fn layer_sizes(n_features: usize, n_qubits: usize) -> Vec<usize> {
        let hidden = |k: usize| (k * n_features).max(8);
        vec![n_features, hidden(2), hidden(4), hidden(2), 1 << n_qubits]
    }

    /// Builds the discriminator; `bank.has_rmfs()` decides whether it is the
    /// `mf-nn` or `mf-rmf-nn` design.
    ///
    /// # Panics
    ///
    /// Panics if the network input/output widths do not match the bank and
    /// qubit count, or the standardizer dimension differs from the feature
    /// width.
    pub fn new(demod: Demodulator, bank: FilterBank, standardizer: Standardizer, net: Mlp) -> Self {
        assert_eq!(
            net.input_size(),
            bank.n_features(),
            "network input must match feature width"
        );
        assert_eq!(
            net.output_size(),
            1 << bank.n_qubits(),
            "network output must enumerate the basis states"
        );
        assert_eq!(
            standardizer.dim(),
            bank.n_features(),
            "standardizer must match feature width"
        );
        let name = if bank.has_rmfs() {
            "mf-rmf-nn"
        } else {
            "mf-nn"
        };
        let kernels = PrecisionKernels::new(&demod, &bank);
        NnDiscriminator {
            demod,
            bank,
            kernels,
            truncated: TruncatedKernelCache::new(),
            standardizer,
            net,
            name,
        }
    }

    /// The underlying filter bank.
    pub fn bank(&self) -> &FilterBank {
        &self.bank
    }

    /// The trained network (for hardware-cost estimation).
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    fn features_of(&self, raw: &IqTrace, bins: Option<&[usize]>) -> Vec<f64> {
        let traces = self.demod.demodulate(raw);
        let f = match bins {
            Some(b) => self.bank.features_truncated(&traces, b),
            None => self.bank.features(&traces),
        };
        self.standardizer.transform(&f)
    }
}

impl Discriminator for NnDiscriminator {
    fn name(&self) -> &str {
        self.name
    }

    fn n_qubits(&self) -> usize {
        self.bank.n_qubits()
    }

    fn discriminate(&self, raw: &IqTrace) -> BasisState {
        let f = self.features_of(raw, None);
        BasisState::new(self.net.predict(&f) as u32)
    }

    fn discriminate_shot_batch(&self, batch: &ShotBatch) -> Vec<BasisState> {
        let kernel = self.kernels.get::<f64>();
        if !kernel.matches(batch) || batch.is_empty() {
            return (0..batch.n_shots())
                .map(|s| self.discriminate(&batch.trace(s)))
                .collect();
        }
        // Fused features → in-place standardization → one batched forward
        // pass; the only allocations are the feature buffer and the
        // network's layer activations, shared by the whole batch.
        let mut features = Vec::new();
        kernel.features_batch(batch, &mut features);
        self.standardizer.transform_rows_inplace(&mut features);
        let x = Matrix::from_vec(batch.n_shots(), kernel.n_features(), features);
        self.net
            .predict_rows(&x)
            .into_iter()
            .map(|c| BasisState::new(c as u32))
            .collect()
    }

    fn discriminate_truncated(&self, raw: &IqTrace, bins: &[usize]) -> Option<BasisState> {
        let f = self.features_of(raw, Some(bins));
        Some(BasisState::new(self.net.predict(&f) as u32))
    }

    fn discriminate_truncated_batch(
        &self,
        raws: &[&IqTrace],
        bins: &[usize],
    ) -> Option<Vec<BasisState>> {
        // Full-length batches: one cached per-duration fused kernel, then
        // in-place standardization and one batched forward pass — the same
        // shape as the full-duration hot path. Ragged batches keep the
        // per-shot feature walk.
        match self.truncated.features_for_batch(
            &self.demod,
            &self.bank,
            raws,
            bins,
            self.kernels.n_samples(),
        ) {
            Some((mut features, width)) => {
                self.standardizer.transform_rows_inplace(&mut features);
                let x = Matrix::from_vec(raws.len(), width, features);
                Some(
                    self.net
                        .predict_rows(&x)
                        .into_iter()
                        .map(|c| BasisState::new(c as u32))
                        .collect(),
                )
            }
            None => {
                let features: Vec<Vec<f64>> = raws
                    .iter()
                    .map(|r| self.features_of(r, Some(bins)))
                    .collect();
                Some(
                    self.net
                        .predict_batch(&features)
                        .into_iter()
                        .map(|c| BasisState::new(c as u32))
                        .collect(),
                )
            }
        }
    }
}

impl PrecisionDiscriminator<f32> for NnDiscriminator {
    /// Fused features at `f32` (the dominant `[shots × 2T]` GEMM), widened
    /// once to the trained `f64` standardizer + small FNN head.
    fn discriminate_shot_batch_r_into(
        &self,
        batch: &ShotBatch<f32>,
        scratch: &mut Vec<f32>,
        out: &mut Vec<BasisState>,
    ) {
        out.clear();
        let kernel = self.kernels.get::<f32>();
        if !kernel.matches(batch) || batch.is_empty() {
            out.extend((0..batch.n_shots()).map(|s| self.discriminate(&batch.trace(s))));
            return;
        }
        kernel.features_batch(batch, scratch);
        let mut features: Vec<f64> = scratch.iter().map(|&v| f64::from(v)).collect();
        self.standardizer.transform_rows_inplace(&mut features);
        let x = Matrix::from_vec(batch.n_shots(), kernel.n_features(), features);
        out.extend(
            self.net
                .predict_rows(&x)
                .into_iter()
                .map(|c| BasisState::new(c as u32)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_sizes_follow_paper_architecture() {
        // Five qubits with RMFs: 10 → 20 → 40 → 20 → 32.
        assert_eq!(
            NnDiscriminator::layer_sizes(10, 5),
            vec![10, 20, 40, 20, 32]
        );
        // Without RMFs: 5 → 10 → 20 → 10 → 32.
        assert_eq!(NnDiscriminator::layer_sizes(5, 5), vec![5, 10, 20, 10, 32]);
    }

    #[test]
    #[should_panic(expected = "network input")]
    fn input_width_mismatch_panics() {
        use readout_dsp::filters::MatchedFilter;
        use readout_sim::ChipConfig;
        let cfg = ChipConfig::two_qubit_test();
        let flat = MatchedFilter::from_envelope(IqTrace::zeros(20));
        let bank = FilterBank::new(vec![flat.clone(), flat]);
        let st = Standardizer::fit(&[vec![0.0, 0.0]]);
        let net = Mlp::new(&[3, 4, 4], 0);
        let _ = NnDiscriminator::new(Demodulator::new(&cfg), bank, st, net);
    }
    // End-to-end behaviour is covered by `trainer.rs` tests, which exercise
    // the full train → discriminate path on simulated data.
}
