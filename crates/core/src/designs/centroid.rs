//! Per-qubit nearest-centroid discrimination on the mean trace value — the
//! simple hardware discriminator cloud systems ship by default (paper §3.4).

use readout_classifiers::CentroidClassifier;
use readout_dsp::{BasebandBatch, Demodulator};
use readout_sim::trace::{BasisState, IqTrace};
use readout_sim::ShotBatch;

use crate::designs::{Discriminator, PrecisionDiscriminator};

/// Nearest-centroid discriminator: each qubit's demodulated trace is reduced
/// to its MTV and classified against the two trained class centroids.
#[derive(Debug, Clone)]
pub struct CentroidDiscriminator {
    demod: Demodulator,
    per_qubit: Vec<CentroidClassifier>,
}

impl CentroidDiscriminator {
    /// Builds the discriminator from per-qubit centroid classifiers (class 0
    /// = ground, class 1 = excited).
    ///
    /// # Panics
    ///
    /// Panics if `per_qubit` is empty or any classifier is not binary.
    pub fn new(demod: Demodulator, per_qubit: Vec<CentroidClassifier>) -> Self {
        assert!(!per_qubit.is_empty(), "at least one qubit required");
        assert!(
            per_qubit.iter().all(|c| c.n_classes() == 2),
            "centroid classifiers must be binary"
        );
        CentroidDiscriminator { demod, per_qubit }
    }
}

impl Discriminator for CentroidDiscriminator {
    fn name(&self) -> &str {
        "centroid"
    }

    fn n_qubits(&self) -> usize {
        self.per_qubit.len()
    }

    fn discriminate(&self, raw: &IqTrace) -> BasisState {
        let mut state = BasisState::new(0);
        for (q, classifier) in self.per_qubit.iter().enumerate() {
            let mtv = self.demod.demodulate_qubit(raw, q).mtv();
            let class = classifier.classify(&[mtv.i, mtv.q]);
            state = state.with_qubit(q, class == 1);
        }
        state
    }

    fn discriminate_shot_batch(&self, batch: &ShotBatch) -> Vec<BasisState> {
        // One batched demodulation for all shots; MTVs are means over the
        // baseband bins, accumulated in the same order as `IqTrace::mtv` so
        // batched and per-shot predictions agree exactly.
        if batch.n_samples() < self.demod.samples_per_bin() {
            // No full bin: the per-shot path's empty-trace MTV semantics.
            return (0..batch.n_shots())
                .map(|s| self.discriminate(&batch.trace(s)))
                .collect();
        }
        let mut bb = BasebandBatch::new();
        self.demod.demodulate_batch(batch, &mut bb);
        let n = bb.n_bins() as f64;
        (0..batch.n_shots())
            .map(|s| {
                let mut state = BasisState::new(0);
                for (q, classifier) in self.per_qubit.iter().enumerate() {
                    let si: f64 = bb.i_of(s, q).iter().sum();
                    let sq: f64 = bb.q_of(s, q).iter().sum();
                    let class = classifier.classify(&[si / n, sq / n]);
                    state = state.with_qubit(q, class == 1);
                }
                state
            })
            .collect()
    }

    fn discriminate_truncated(&self, raw: &IqTrace, bins: &[usize]) -> Option<BasisState> {
        let mut state = BasisState::new(0);
        for (q, classifier) in self.per_qubit.iter().enumerate() {
            let tr = self.demod.demodulate_qubit(raw, q);
            let mtv = tr.truncated(bins[q]).mtv();
            let class = classifier.classify(&[mtv.i, mtv.q]);
            state = state.with_qubit(q, class == 1);
        }
        Some(state)
    }
}

impl PrecisionDiscriminator<f32> for CentroidDiscriminator {
    /// Single-precision batched demodulation; MTV means accumulate in `f32`
    /// and widen only for the two-point centroid comparison.
    fn discriminate_shot_batch_r_into(
        &self,
        batch: &ShotBatch<f32>,
        _scratch: &mut Vec<f32>,
        out: &mut Vec<BasisState>,
    ) {
        out.clear();
        if batch.n_samples() < self.demod.samples_per_bin() {
            out.extend((0..batch.n_shots()).map(|s| self.discriminate(&batch.trace(s))));
            return;
        }
        let mut bb = BasebandBatch::<f32>::new();
        self.demod.demodulate_batch(batch, &mut bb);
        let n = bb.n_bins() as f64;
        out.extend((0..batch.n_shots()).map(|s| {
            let mut state = BasisState::new(0);
            for (q, classifier) in self.per_qubit.iter().enumerate() {
                let si: f32 = bb.i_of(s, q).iter().sum();
                let sq: f32 = bb.q_of(s, q).iter().sum();
                let class = classifier.classify(&[f64::from(si) / n, f64::from(sq) / n]);
                state = state.with_qubit(q, class == 1);
            }
            state
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readout_sim::{ChipConfig, Dataset};

    fn train_centroid(dataset: &Dataset) -> CentroidDiscriminator {
        let demod = Demodulator::new(&dataset.config);
        let n = dataset.n_qubits();
        let mut per_qubit = Vec::new();
        for q in 0..n {
            let mut classes = vec![Vec::new(), Vec::new()];
            for shot in &dataset.shots {
                let mtv = demod.demodulate_qubit(&shot.raw, q).mtv();
                let class = usize::from(shot.prepared.qubit(q));
                classes[class].push(vec![mtv.i, mtv.q]);
            }
            per_qubit.push(CentroidClassifier::train(&classes));
        }
        CentroidDiscriminator::new(demod, per_qubit)
    }

    #[test]
    fn discriminates_well_separated_qubits() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 40, 8);
        let disc = train_centroid(&ds);
        assert_eq!(disc.n_qubits(), 2);
        let correct = ds
            .shots
            .iter()
            .filter(|s| disc.discriminate(&s.raw) == s.prepared)
            .count();
        let acc = correct as f64 / ds.shots.len() as f64;
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn truncated_discrimination_works() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 10, 9);
        let disc = train_centroid(&ds);
        let out = disc.discriminate_truncated(&ds.shots[0].raw, &[10, 10]);
        assert!(out.is_some());
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_classifier_rejected() {
        let cfg = ChipConfig::two_qubit_test();
        let demod = Demodulator::new(&cfg);
        let tri = CentroidClassifier::train(&[
            vec![vec![0.0, 0.0]],
            vec![vec![1.0, 0.0]],
            vec![vec![2.0, 0.0]],
        ]);
        let _ = CentroidDiscriminator::new(demod, vec![tri]);
    }
}
