//! The `mf-svm` / `mf-rmf-svm` designs: per-qubit linear SVMs over the full
//! filter-bank feature vector.
//!
//! Each qubit gets its own binary SVM, but every SVM sees *all* qubits'
//! filter outputs — that is what lets a linear model subtract the linear part
//! of readout crosstalk (paper §4.3.3, Table 2's `MF-RMF-SVM` row).

use readout_classifiers::LinearSvm;
use readout_dsp::Demodulator;
use readout_nn::Standardizer;
use readout_sim::trace::{BasisState, IqTrace};
use readout_sim::ShotBatch;

use crate::bank::FilterBank;
use crate::designs::{Discriminator, PrecisionDiscriminator};
use crate::fused::{PrecisionKernels, TruncatedKernelCache};

/// Linear-SVM discriminator over filter-bank features.
#[derive(Debug, Clone)]
pub struct SvmDiscriminator {
    demod: Demodulator,
    bank: FilterBank,
    kernels: PrecisionKernels,
    truncated: TruncatedKernelCache,
    standardizer: Standardizer,
    svms: Vec<LinearSvm>,
    name: &'static str,
}

impl SvmDiscriminator {
    /// Builds the discriminator; `bank.has_rmfs()` decides whether it is the
    /// `mf-svm` or `mf-rmf-svm` design.
    ///
    /// # Panics
    ///
    /// Panics if the SVM count differs from the qubit count or the
    /// standardizer dimension differs from the feature width.
    pub fn new(
        demod: Demodulator,
        bank: FilterBank,
        standardizer: Standardizer,
        svms: Vec<LinearSvm>,
    ) -> Self {
        assert_eq!(svms.len(), bank.n_qubits(), "one SVM per qubit required");
        assert_eq!(
            standardizer.dim(),
            bank.n_features(),
            "standardizer must match feature width"
        );
        let name = if bank.has_rmfs() {
            "mf-rmf-svm"
        } else {
            "mf-svm"
        };
        let kernels = PrecisionKernels::new(&demod, &bank);
        SvmDiscriminator {
            demod,
            bank,
            kernels,
            truncated: TruncatedKernelCache::new(),
            standardizer,
            svms,
            name,
        }
    }

    /// The underlying filter bank.
    pub fn bank(&self) -> &FilterBank {
        &self.bank
    }

    fn classify_features(&self, features: &[f64]) -> BasisState {
        let f = self.standardizer.transform(features);
        let mut state = BasisState::new(0);
        for (q, svm) in self.svms.iter().enumerate() {
            state = state.with_qubit(q, svm.predict(&f));
        }
        state
    }
}

impl Discriminator for SvmDiscriminator {
    fn name(&self) -> &str {
        self.name
    }

    fn n_qubits(&self) -> usize {
        self.bank.n_qubits()
    }

    fn discriminate(&self, raw: &IqTrace) -> BasisState {
        let traces = self.demod.demodulate(raw);
        self.classify_features(&self.bank.features(&traces))
    }

    fn discriminate_shot_batch(&self, batch: &ShotBatch) -> Vec<BasisState> {
        let kernel = self.kernels.get::<f64>();
        if !kernel.matches(batch) {
            return (0..batch.n_shots())
                .map(|s| self.discriminate(&batch.trace(s)))
                .collect();
        }
        let mut features = Vec::new();
        kernel.features_batch(batch, &mut features);
        self.standardizer.transform_rows_inplace(&mut features);
        features
            .chunks(kernel.n_features().max(1))
            .map(|f| {
                let mut state = BasisState::new(0);
                for (q, svm) in self.svms.iter().enumerate() {
                    state = state.with_qubit(q, svm.predict(f));
                }
                state
            })
            .collect()
    }

    fn discriminate_truncated(&self, raw: &IqTrace, bins: &[usize]) -> Option<BasisState> {
        let traces = self.demod.demodulate(raw);
        Some(self.classify_features(&self.bank.features_truncated(&traces, bins)))
    }

    fn discriminate_truncated_batch(
        &self,
        raws: &[&IqTrace],
        bins: &[usize],
    ) -> Option<Vec<BasisState>> {
        // One cached per-duration fused kernel per budget vector; the batch
        // GEMM replaces the per-shot demod walk of the default method.
        match self.truncated.features_for_batch(
            &self.demod,
            &self.bank,
            raws,
            bins,
            self.kernels.n_samples(),
        ) {
            Some((features, width)) => Some(
                features
                    .chunks(width.max(1))
                    .map(|f| self.classify_features(f))
                    .collect(),
            ),
            None => raws
                .iter()
                .map(|r| self.discriminate_truncated(r, bins))
                .collect(),
        }
    }
}

impl PrecisionDiscriminator<f32> for SvmDiscriminator {
    /// Fused features at `f32` (the dominant `[shots × 2T]` GEMM), widened
    /// once to the trained `f64` standardizer + linear heads — mirroring a
    /// hardware pipeline where the MAC banks run narrow and the tiny head
    /// runs at full precision.
    fn discriminate_shot_batch_r_into(
        &self,
        batch: &ShotBatch<f32>,
        scratch: &mut Vec<f32>,
        out: &mut Vec<BasisState>,
    ) {
        out.clear();
        let kernel = self.kernels.get::<f32>();
        if !kernel.matches(batch) {
            out.extend((0..batch.n_shots()).map(|s| self.discriminate(&batch.trace(s))));
            return;
        }
        kernel.features_batch(batch, scratch);
        let mut features: Vec<f64> = scratch.iter().map(|&v| f64::from(v)).collect();
        self.standardizer.transform_rows_inplace(&mut features);
        out.extend(features.chunks(kernel.n_features().max(1)).map(|f| {
            let mut state = BasisState::new(0);
            for (q, svm) in self.svms.iter().enumerate() {
                state = state.with_qubit(q, svm.predict(f));
            }
            state
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readout_classifiers::svm::SvmConfig;
    use readout_dsp::filters::MatchedFilter;
    use readout_sim::{ChipConfig, Dataset};

    fn train_mf_svm(dataset: &Dataset) -> SvmDiscriminator {
        let demod = Demodulator::new(&dataset.config);
        let n = dataset.n_qubits();
        let demod_traces: Vec<Vec<IqTrace>> = dataset
            .shots
            .iter()
            .map(|s| demod.demodulate(&s.raw))
            .collect();
        let mut mfs = Vec::new();
        for q in 0..n {
            let excited: Vec<&IqTrace> = dataset
                .shots
                .iter()
                .zip(&demod_traces)
                .filter(|(s, _)| s.prepared.qubit(q))
                .map(|(_, tr)| &tr[q])
                .collect();
            let ground: Vec<&IqTrace> = dataset
                .shots
                .iter()
                .zip(&demod_traces)
                .filter(|(s, _)| !s.prepared.qubit(q))
                .map(|(_, tr)| &tr[q])
                .collect();
            mfs.push(MatchedFilter::train(&excited, &ground).unwrap());
        }
        let bank = FilterBank::new(mfs);
        let features: Vec<Vec<f64>> = demod_traces.iter().map(|tr| bank.features(tr)).collect();
        let standardizer = Standardizer::fit(&features);
        let features = standardizer.transform_all(&features);
        let svms = (0..n)
            .map(|q| {
                let labels: Vec<bool> = dataset.shots.iter().map(|s| s.prepared.qubit(q)).collect();
                LinearSvm::train(&features, &labels, &SvmConfig::default())
            })
            .collect();
        SvmDiscriminator::new(demod, bank, standardizer, svms)
    }

    #[test]
    fn svm_head_discriminates() {
        // 120 shots per state: at 50 the training-set accuracy estimate is
        // noisy enough (~±7 pp) that an unlucky noise stream dips below the
        // bound, which made the test flaky across noise-kernel backends.
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 120, 19);
        let disc = train_mf_svm(&ds);
        assert_eq!(disc.name(), "mf-svm");
        let correct = ds
            .shots
            .iter()
            .filter(|s| disc.discriminate(&s.raw) == s.prepared)
            .count();
        let acc = correct as f64 / ds.shots.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn truncated_path_is_supported() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 20, 20);
        let disc = train_mf_svm(&ds);
        assert!(disc
            .discriminate_truncated(&ds.shots[0].raw, &[15, 15])
            .is_some());
    }

    #[test]
    #[should_panic(expected = "one SVM per qubit")]
    fn svm_count_mismatch_panics() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 10, 21);
        let trained = train_mf_svm(&ds);
        let _ = SvmDiscriminator::new(
            Demodulator::new(&cfg),
            trained.bank.clone(),
            trained.standardizer.clone(),
            vec![],
        );
    }
}
