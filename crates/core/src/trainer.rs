//! Training orchestration: dataset in, any trained design out.
//!
//! A [`ReadoutTrainer`] demodulates the training shots once, then lazily
//! trains and caches the shared stages (matched filters, Algorithm 1
//! relabeling, relaxation matched filters) so that building several designs
//! for a Table 1-style comparison does not repeat work. Use
//! [`ReadoutTrainer::reset_caches`] (or a fresh trainer) when measuring
//! training *time* per design, as Table 5 does.

use readout_classifiers::svm::SvmConfig;
use readout_classifiers::{CentroidClassifier, LinearSvm, ThresholdDiscriminator};
use readout_dsp::filters::MatchedFilter;
use readout_dsp::{BasebandBatch, Demodulator};
use readout_nn::net::TrainConfig;
use readout_nn::{Mlp, Standardizer};
use readout_sim::dataset::Dataset;
use readout_sim::trace::IqTrace;
use readout_sim::ShotBatch;

use crate::bank::FilterBank;
use crate::designs::{
    BaselineFnnDiscriminator, CentroidDiscriminator, DesignKind, Discriminator, MfDiscriminator,
    NnDiscriminator, SvmDiscriminator,
};
use crate::relabel::identify_relaxation_traces;

/// Hyper-parameters for all trainable stages.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Training configuration for the small FNN heads (`mf-nn`, `mf-rmf-nn`).
    pub nn_train: TrainConfig,
    /// Training configuration for the baseline large FNN.
    pub baseline_train: TrainConfig,
    /// Configuration of the per-qubit linear SVMs.
    pub svm: SvmConfig,
    /// Minimum number of mined relaxation traces required to train a
    /// meaningful RMF; below this the RMF degenerates to a zero envelope
    /// (the paper's qubit-2 situation, where Algorithm 1 output is noise).
    pub min_relaxation_traces: usize,
    /// Minimum resolvability of Algorithm 1's geometry, measured as the MTV
    /// centroid distance in units of the MTV noise deviation. Below this the
    /// mined "relaxation" labels are dominated by noise (the paper reports
    /// exactly this for its qubit 2: "the lack of distinguishability results
    /// in noisy results"), so the RMF degenerates to a zero envelope rather
    /// than injecting a noise feature.
    pub min_mtv_resolvability: f64,
    /// Base seed for network initialization.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            nn_train: TrainConfig {
                epochs: 150,
                batch_size: 64,
                learning_rate: 3e-3,
                ..TrainConfig::default()
            },
            baseline_train: TrainConfig {
                epochs: 60,
                batch_size: 128,
                learning_rate: 2e-3,
                ..TrainConfig::default()
            },
            svm: SvmConfig {
                lambda: 1e-5,
                epochs: 60,
                seed: 0,
            },
            min_relaxation_traces: 3,
            min_mtv_resolvability: 4.0,
            seed: 0x9e3779b9,
        }
    }
}

/// Trains any [`DesignKind`] from one dataset and training-index set.
#[derive(Debug)]
pub struct ReadoutTrainer<'a> {
    dataset: &'a Dataset,
    train_idx: Vec<usize>,
    config: TrainerConfig,
    demod: Demodulator,
    /// Demodulated traces of the training shots (aligned with `train_idx`).
    demod_traces: Vec<Vec<IqTrace>>,
    mfs: Option<Vec<MatchedFilter>>,
    rmfs: Option<Vec<MatchedFilter>>,
    relax_fractions: Option<Vec<f64>>,
}

impl<'a> ReadoutTrainer<'a> {
    /// Creates a trainer over the given training indices with default
    /// hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `train_idx` is empty or contains out-of-range indices.
    pub fn new(dataset: &'a Dataset, train_idx: &[usize]) -> Self {
        Self::with_config(dataset, train_idx, TrainerConfig::default())
    }

    /// Creates a trainer with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `train_idx` is empty or contains out-of-range indices.
    pub fn with_config(dataset: &'a Dataset, train_idx: &[usize], config: TrainerConfig) -> Self {
        assert!(!train_idx.is_empty(), "training set must be non-empty");
        let demod = Demodulator::new(&dataset.config);
        // One batched demodulation pass over the training set (bit-identical
        // to per-shot demodulation, a fraction of the allocations).
        let batch: ShotBatch = ShotBatch::from_dataset(dataset, train_idx);
        let mut bb = BasebandBatch::new();
        demod.demodulate_batch(&batch, &mut bb);
        let demod_traces = (0..train_idx.len())
            .map(|s| (0..dataset.n_qubits()).map(|q| bb.trace(s, q)).collect())
            .collect();
        ReadoutTrainer {
            dataset,
            train_idx: train_idx.to_vec(),
            config,
            demod,
            demod_traces,
            mfs: None,
            rmfs: None,
            relax_fractions: None,
        }
    }

    /// The hyper-parameters in use.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.dataset.n_qubits()
    }

    /// Number of training shots.
    pub fn n_train(&self) -> usize {
        self.train_idx.len()
    }

    /// Drops all cached trained stages (for per-design timing studies).
    pub fn reset_caches(&mut self) {
        self.mfs = None;
        self.rmfs = None;
        self.relax_fractions = None;
    }

    /// Fraction of excited-labeled training traces Algorithm 1 re-labeled as
    /// relaxations, per qubit (paper §4.3.1 reports 4.3–11.6 %).
    pub fn relaxation_fractions(&mut self) -> Vec<f64> {
        self.ensure_rmfs();
        self.relax_fractions
            .clone()
            .expect("populated by ensure_rmfs")
    }

    /// The trained per-qubit matched filters (training them on first call).
    pub fn matched_filters(&mut self) -> &[MatchedFilter] {
        self.ensure_mfs();
        self.mfs.as_deref().expect("populated by ensure_mfs")
    }

    /// The trained per-qubit relaxation matched filters.
    pub fn relaxation_filters(&mut self) -> &[MatchedFilter] {
        self.ensure_rmfs();
        self.rmfs.as_deref().expect("populated by ensure_rmfs")
    }

    /// Trains the requested design end to end.
    pub fn train(&mut self, kind: DesignKind) -> Box<dyn Discriminator> {
        match kind {
            DesignKind::Centroid => Box::new(self.train_centroid()),
            DesignKind::Mf => Box::new(self.train_mf()),
            DesignKind::MfSvm => Box::new(self.train_svm(false)),
            DesignKind::MfRmfSvm => Box::new(self.train_svm(true)),
            DesignKind::MfNn => Box::new(self.train_nn(false)),
            DesignKind::MfRmfNn => Box::new(self.train_nn(true)),
            DesignKind::BaselineFnn => Box::new(self.train_baseline()),
        }
    }

    fn ensure_mfs(&mut self) {
        if self.mfs.is_some() {
            return;
        }
        let n = self.n_qubits();
        let mut mfs = Vec::with_capacity(n);
        for q in 0..n {
            let (ground, excited) = self.classes_for(q);
            // Envelope oriented excited-minus-ground: positive output leans
            // excited, matching the threshold orientation downstream.
            let mf = MatchedFilter::train(&excited, &ground)
                .expect("training classes are non-empty by construction");
            mfs.push(mf);
        }
        self.mfs = Some(mfs);
    }

    fn ensure_rmfs(&mut self) {
        if self.rmfs.is_some() {
            return;
        }
        let n = self.n_qubits();
        let n_bins = self.dataset.config.n_bins();
        let mut rmfs = Vec::with_capacity(n);
        let mut fractions = Vec::with_capacity(n);
        for q in 0..n {
            let (ground, excited) = self.classes_for(q);
            let labels = identify_relaxation_traces(&ground, &excited);
            fractions.push(labels.relaxation_fraction(excited.len()));
            // MTV noise: per-bin noise averaged over the window.
            let mtv_sigma = self.dataset.config.bin_noise_sigma()
                / (self.dataset.config.n_bins() as f64).sqrt();
            let resolvability = 2.0 * labels.radius / mtv_sigma.max(f64::MIN_POSITIVE);
            if labels.relaxation_indices.len() < self.config.min_relaxation_traces
                || resolvability < self.config.min_mtv_resolvability
            {
                // Degenerate case (e.g. a qubit with no separation): a zero
                // envelope contributes a constant feature the head ignores.
                rmfs.push(MatchedFilter::from_envelope(IqTrace::zeros(n_bins)));
                continue;
            }
            let relax: Vec<&IqTrace> = labels
                .relaxation_indices
                .iter()
                .map(|&i| excited[i])
                .collect();
            // RMF = mean(Tr_relax − Tr_0)/var(Tr_relax − Tr_0) (paper §4.3.2).
            let rmf = MatchedFilter::train(&relax, &ground)
                .expect("relaxation and ground classes are non-empty");
            rmfs.push(rmf);
        }
        self.rmfs = Some(rmfs);
        self.relax_fractions = Some(fractions);
    }

    /// Ground/excited demodulated traces of qubit `q` across the training set.
    fn classes_for(&self, q: usize) -> (Vec<&IqTrace>, Vec<&IqTrace>) {
        let mut ground = Vec::new();
        let mut excited = Vec::new();
        for (&shot_idx, traces) in self.train_idx.iter().zip(&self.demod_traces) {
            if self.dataset.shots[shot_idx].prepared.qubit(q) {
                excited.push(&traces[q]);
            } else {
                ground.push(&traces[q]);
            }
        }
        (ground, excited)
    }

    fn bank(&mut self, with_rmf: bool) -> FilterBank {
        self.ensure_mfs();
        let mfs = self.mfs.clone().expect("populated by ensure_mfs");
        if with_rmf {
            self.ensure_rmfs();
            FilterBank::with_rmfs(mfs, self.rmfs.clone().expect("populated by ensure_rmfs"))
        } else {
            FilterBank::new(mfs)
        }
    }

    fn feature_matrix(&self, bank: &FilterBank) -> Vec<Vec<f64>> {
        self.demod_traces
            .iter()
            .map(|tr| bank.features(tr))
            .collect()
    }

    fn state_labels(&self) -> Vec<usize> {
        self.train_idx
            .iter()
            .map(|&i| self.dataset.shots[i].prepared.index())
            .collect()
    }

    fn qubit_labels(&self, q: usize) -> Vec<bool> {
        self.train_idx
            .iter()
            .map(|&i| self.dataset.shots[i].prepared.qubit(q))
            .collect()
    }

    /// Trains the `centroid` design with its concrete type (the typed
    /// counterpart of [`ReadoutTrainer::train`], for callers that need the
    /// precision-generic `f32` batch paths only concrete designs expose).
    pub fn train_centroid(&mut self) -> CentroidDiscriminator {
        let n = self.n_qubits();
        let mut per_qubit = Vec::with_capacity(n);
        for q in 0..n {
            let mut classes = vec![Vec::new(), Vec::new()];
            for (&shot_idx, traces) in self.train_idx.iter().zip(&self.demod_traces) {
                let mtv = traces[q].mtv();
                let class = usize::from(self.dataset.shots[shot_idx].prepared.qubit(q));
                classes[class].push(vec![mtv.i, mtv.q]);
            }
            per_qubit.push(CentroidClassifier::train(&classes));
        }
        CentroidDiscriminator::new(self.demod.clone(), per_qubit)
    }

    /// Trains the `mf` design with its concrete type.
    pub fn train_mf(&mut self) -> MfDiscriminator {
        let bank = self.bank(false);
        let n = self.n_qubits();
        let features = self.feature_matrix(&bank);
        let mut thresholds = Vec::with_capacity(n);
        for q in 0..n {
            let labels = self.qubit_labels(q);
            let excited: Vec<f64> = features
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| l)
                .map(|(f, _)| f[q])
                .collect();
            let ground: Vec<f64> = features
                .iter()
                .zip(&labels)
                .filter(|(_, &l)| !l)
                .map(|(f, _)| f[q])
                .collect();
            thresholds.push(ThresholdDiscriminator::train(&excited, &ground));
        }
        MfDiscriminator::new(self.demod.clone(), bank, thresholds)
    }

    /// Trains the `mf-svm` (or, `with_rmf`, `mf-rmf-svm`) design with its
    /// concrete type.
    pub fn train_svm(&mut self, with_rmf: bool) -> SvmDiscriminator {
        let bank = self.bank(with_rmf);
        let features = self.feature_matrix(&bank);
        let standardizer = Standardizer::fit(&features);
        let features = standardizer.transform_all(&features);
        let svms: Vec<LinearSvm> = (0..self.n_qubits())
            .map(|q| LinearSvm::train(&features, &self.qubit_labels(q), &self.config.svm))
            .collect();
        SvmDiscriminator::new(self.demod.clone(), bank, standardizer, svms)
    }

    /// Trains a head network with restart-on-plateau: narrow ReLU stacks
    /// (e.g. the 2-feature `mf-nn` head) can die wholesale under an unlucky
    /// initialization, leaving the loss pinned at the uniform-prediction
    /// plateau `ln(n_classes)` with zero gradient. When that happens the
    /// network is reinitialized from a deterministically derived seed and
    /// retrained; the best attempt wins.
    fn train_with_restarts(
        sizes: &[usize],
        seed: u64,
        inputs: &[Vec<f64>],
        labels: &[usize],
        config: &TrainConfig,
    ) -> Mlp {
        const MAX_RESTARTS: u64 = 4;
        let uniform_loss = (*sizes.last().expect("non-empty sizes") as f64).ln();
        let mut best: Option<(f64, Mlp)> = None;
        for attempt in 0..MAX_RESTARTS {
            let mut net = Mlp::new(sizes, seed ^ attempt.wrapping_mul(0x9e3779b97f4a7c15));
            let report = net.train(inputs, labels, config);
            let loss = report.final_loss();
            if best.as_ref().is_none_or(|(l, _)| loss < *l) {
                best = Some((loss, net));
            }
            if loss < 0.995 * uniform_loss {
                break;
            }
        }
        best.expect("at least one attempt ran").1
    }

    /// Trains the `mf-nn` (or, `with_rmf`, `mf-rmf-nn`) design with its
    /// concrete type.
    pub fn train_nn(&mut self, with_rmf: bool) -> NnDiscriminator {
        let bank = self.bank(with_rmf);
        let features = self.feature_matrix(&bank);
        let standardizer = Standardizer::fit(&features);
        let features = standardizer.transform_all(&features);
        let sizes = NnDiscriminator::layer_sizes(bank.n_features(), self.n_qubits());
        let labels = self.state_labels();
        let mut net = Self::train_with_restarts(
            &sizes,
            self.config.seed ^ u64::from(with_rmf),
            &features,
            &labels,
            &self.config.nn_train,
        );
        // Fine-tune at a lower learning rate: the 32-way softmax head gains
        // a consistent fraction of a percent from annealing, which matters
        // at Table 1 resolution.
        let fine = TrainConfig {
            epochs: self.config.nn_train.epochs / 3,
            learning_rate: self.config.nn_train.learning_rate / 6.0,
            seed: self.config.nn_train.seed.wrapping_add(1),
            ..self.config.nn_train.clone()
        };
        net.train(&features, &labels, &fine);
        NnDiscriminator::new(self.demod.clone(), bank, standardizer, net)
    }

    /// Trains the baseline raw-trace FNN with its concrete type.
    pub fn train_baseline(&mut self) -> BaselineFnnDiscriminator {
        let n_samples = self.dataset.config.n_samples();
        let inputs: Vec<Vec<f64>> = self
            .train_idx
            .iter()
            .map(|&i| self.dataset.shots[i].raw.to_feature_vec())
            .collect();
        let standardizer = Standardizer::fit(&inputs);
        let inputs = standardizer.transform_all(&inputs);
        let sizes = BaselineFnnDiscriminator::layer_sizes(n_samples, self.n_qubits());
        let labels = self.state_labels();
        let mut net = Self::train_with_restarts(
            &sizes,
            self.config.seed ^ 0xbead,
            &inputs,
            &labels,
            &self.config.baseline_train,
        );
        let fine = TrainConfig {
            epochs: self.config.baseline_train.epochs / 3,
            learning_rate: self.config.baseline_train.learning_rate / 6.0,
            seed: self.config.baseline_train.seed.wrapping_add(1),
            ..self.config.baseline_train.clone()
        };
        net.train(&inputs, &labels, &fine);
        BaselineFnnDiscriminator::new(standardizer, net, self.n_qubits(), n_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use readout_sim::ChipConfig;

    fn small_setup() -> (Dataset, Vec<usize>, Vec<usize>) {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 60, 77);
        let split = ds.split(0.5, 0.0, 3);
        (ds, split.train, split.test)
    }

    fn accuracy(disc: &dyn Discriminator, ds: &Dataset, idx: &[usize]) -> f64 {
        let raws: Vec<&IqTrace> = idx.iter().map(|&i| &ds.shots[i].raw).collect();
        let preds = disc.discriminate_batch(&raws);
        let correct = idx
            .iter()
            .zip(&preds)
            .filter(|(&i, &p)| ds.shots[i].prepared == p)
            .count();
        correct as f64 / idx.len() as f64
    }

    #[test]
    fn every_design_trains_and_beats_chance() {
        let (ds, train, test) = small_setup();
        let mut trainer = ReadoutTrainer::with_config(
            &ds,
            &train,
            TrainerConfig {
                nn_train: TrainConfig {
                    epochs: 30,
                    ..TrainerConfig::default().nn_train
                },
                baseline_train: TrainConfig {
                    epochs: 6,
                    ..TrainerConfig::default().baseline_train
                },
                ..TrainerConfig::default()
            },
        );
        for kind in DesignKind::ALL {
            let disc = trainer.train(kind);
            let acc = accuracy(disc.as_ref(), &ds, &test);
            // Chance on 2 qubits is 0.25.
            assert!(acc > 0.5, "{kind} accuracy {acc}");
            assert_eq!(disc.n_qubits(), 2);
            assert_eq!(disc.name(), kind.label());
        }
    }

    #[test]
    fn matched_filters_are_cached() {
        let (ds, train, _) = small_setup();
        let mut trainer = ReadoutTrainer::new(&ds, &train);
        let first = trainer.matched_filters().to_vec();
        let second = trainer.matched_filters().to_vec();
        assert_eq!(first, second);
        trainer.reset_caches();
        let third = trainer.matched_filters().to_vec();
        assert_eq!(
            first, third,
            "retraining on same data must reproduce filters"
        );
    }

    #[test]
    fn relaxation_fractions_are_physical() {
        let (ds, train, _) = small_setup();
        let mut trainer = ReadoutTrainer::new(&ds, &train);
        let fracs = trainer.relaxation_fractions();
        assert_eq!(fracs.len(), 2);
        // T1-driven relaxation fractions plus Algorithm-1 noise: bounded
        // well below 1 and usually a few percent.
        for (q, f) in fracs.iter().enumerate() {
            assert!((0.0..0.5).contains(f), "qubit {q} fraction {f}");
        }
    }

    #[test]
    fn rmf_design_features_are_wider() {
        let (ds, train, _) = small_setup();
        let mut trainer = ReadoutTrainer::new(&ds, &train);
        let bank_plain = trainer.bank(false);
        let bank_rmf = trainer.bank(true);
        assert_eq!(bank_plain.n_features(), 2);
        assert_eq!(bank_rmf.n_features(), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_panics() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 2, 0);
        let _ = ReadoutTrainer::new(&ds, &[]);
    }
}
