//! Readout-duration reduction without retraining (paper §5).
//!
//! HERQULES trains on the full readout window; at inference the traces (and
//! envelopes) are truncated to a shorter window. The feature dimension is
//! unchanged, so the trained network applies as-is. This module provides the
//! sweep utilities behind Fig. 11(a) and Table 3, and the shortest-duration
//! search described in §5.2 ("an iterative sweep can be done on the readout
//! duration to find the shortest time whose cumulative accuracy saturates").

use readout_sim::dataset::Dataset;
use readout_sim::trace::IqTrace;

use crate::designs::Discriminator;
use crate::metrics::EvalResult;

/// Evaluates a discriminator at a uniform per-qubit bin budget.
///
/// Returns `None` for designs that cannot run truncated (the baseline FNN).
///
/// # Panics
///
/// Panics if `indices` is empty.
pub fn evaluate_truncated(
    disc: &dyn Discriminator,
    dataset: &Dataset,
    indices: &[usize],
    bins: usize,
) -> Option<EvalResult> {
    let budgets = vec![bins; disc.n_qubits()];
    evaluate_truncated_per_qubit(disc, dataset, indices, &budgets)
}

/// Evaluates with per-qubit bin budgets (the asymmetric readout of §5.2).
///
/// # Panics
///
/// Panics if `indices` is empty or budget length differs from the qubit
/// count.
pub fn evaluate_truncated_per_qubit(
    disc: &dyn Discriminator,
    dataset: &Dataset,
    indices: &[usize],
    bins: &[usize],
) -> Option<EvalResult> {
    assert!(!indices.is_empty(), "evaluation set must be non-empty");
    assert_eq!(
        bins.len(),
        disc.n_qubits(),
        "one bin budget per qubit required"
    );
    let raws: Vec<&IqTrace> = indices.iter().map(|&i| &dataset.shots[i].raw).collect();
    let preds = disc.discriminate_truncated_batch(&raws, bins)?;
    let outcomes = indices
        .iter()
        .zip(preds)
        .map(|(&i, pred)| (dataset.shots[i].prepared, pred))
        .collect();
    Some(EvalResult::from_outcomes(dataset.n_qubits(), outcomes))
}

/// One point of a duration sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Bin budget applied to every qubit.
    pub bins: usize,
    /// Readout duration in seconds implied by the budget.
    pub duration_s: f64,
    /// Evaluation at this duration.
    pub result: EvalResult,
}

/// Sweeps the uniform readout duration over the given bin budgets
/// (Fig. 11(a)'s x-axis).
///
/// # Panics
///
/// Panics if the design does not support truncation or `bin_budgets` is
/// empty.
pub fn sweep_durations(
    disc: &dyn Discriminator,
    dataset: &Dataset,
    indices: &[usize],
    bin_budgets: &[usize],
) -> Vec<SweepPoint> {
    assert!(!bin_budgets.is_empty(), "need at least one bin budget");
    bin_budgets
        .iter()
        .map(|&bins| SweepPoint {
            bins,
            duration_s: bins as f64 * dataset.config.demod_bin_s,
            result: evaluate_truncated(disc, dataset, indices, bins)
                .expect("design must support truncated inference"),
        })
        .collect()
}

/// Finds the smallest uniform bin budget whose cumulative accuracy is within
/// `tolerance` of the full-duration cumulative accuracy (§5.2's saturation
/// search).
///
/// # Panics
///
/// Panics if the design does not support truncation.
pub fn shortest_saturating_duration(
    disc: &dyn Discriminator,
    dataset: &Dataset,
    indices: &[usize],
    tolerance: f64,
) -> SweepPoint {
    let full_bins = dataset.config.n_bins();
    let full = evaluate_truncated(disc, dataset, indices, full_bins)
        .expect("design must support truncated inference");
    let target = full.cumulative_accuracy() - tolerance;
    for bins in 1..full_bins {
        let result = evaluate_truncated(disc, dataset, indices, bins)
            .expect("design must support truncated inference");
        if result.cumulative_accuracy() >= target {
            let duration_s = bins as f64 * dataset.config.demod_bin_s;
            return SweepPoint {
                bins,
                duration_s,
                result,
            };
        }
    }
    SweepPoint {
        bins: full_bins,
        duration_s: full_bins as f64 * dataset.config.demod_bin_s,
        result: full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::DesignKind;
    use crate::trainer::ReadoutTrainer;
    use readout_sim::ChipConfig;

    fn trained_mf() -> (Dataset, Vec<usize>, Box<dyn Discriminator>) {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 50, 23);
        let split = ds.split(0.5, 0.0, 2);
        let mut trainer = ReadoutTrainer::new(&ds, &split.train);
        let disc = trainer.train(DesignKind::Mf);
        (ds, split.test, disc)
    }

    #[test]
    fn full_budget_matches_untruncated_evaluation() {
        let (ds, test, disc) = trained_mf();
        let full = crate::metrics::evaluate(disc.as_ref(), &ds, &test);
        let truncated = evaluate_truncated(disc.as_ref(), &ds, &test, ds.config.n_bins()).unwrap();
        assert_eq!(full.per_qubit_accuracy(), truncated.per_qubit_accuracy());
    }

    #[test]
    fn sweep_reports_increasing_durations() {
        let (ds, test, disc) = trained_mf();
        let sweep = sweep_durations(disc.as_ref(), &ds, &test, &[4, 10, 20]);
        assert_eq!(sweep.len(), 3);
        assert!((sweep[0].duration_s - 200e-9).abs() < 1e-15);
        assert!((sweep[2].duration_s - 1e-6).abs() < 1e-15);
        // Longer readout must not be dramatically worse than the shortest.
        assert!(
            sweep[2].result.cumulative_accuracy() + 0.05 >= sweep[0].result.cumulative_accuracy()
        );
    }

    #[test]
    fn shortest_duration_is_at_most_full() {
        let (ds, test, disc) = trained_mf();
        let point = shortest_saturating_duration(disc.as_ref(), &ds, &test, 0.02);
        assert!(point.bins <= ds.config.n_bins());
        assert!(point.bins >= 1);
    }

    #[test]
    fn asymmetric_budgets_are_honoured() {
        let (ds, test, disc) = trained_mf();
        let res = evaluate_truncated_per_qubit(disc.as_ref(), &ds, &test, &[20, 5]);
        assert!(res.is_some());
    }

    #[test]
    fn baseline_reports_unsupported() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 20, 29);
        let split = ds.split(0.5, 0.0, 2);
        let mut trainer = ReadoutTrainer::with_config(
            &ds,
            &split.train,
            crate::trainer::TrainerConfig {
                baseline_train: readout_nn::net::TrainConfig {
                    epochs: 1,
                    ..crate::trainer::TrainerConfig::default().baseline_train
                },
                ..crate::trainer::TrainerConfig::default()
            },
        );
        let disc = trainer.train(DesignKind::BaselineFnn);
        assert!(evaluate_truncated(disc.as_ref(), &ds, &split.test, 10).is_none());
    }
}
