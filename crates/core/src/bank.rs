//! The per-qubit filter bank: matched filters, relaxation matched filters,
//! and feature assembly.
//!
//! A [`FilterBank`] owns one MF per qubit (trained ground vs excited) and
//! optionally one RMF per qubit (trained relaxation vs ground, on the traces
//! Algorithm 1 mined). Applying the bank to a shot's demodulated traces
//! yields the low-dimensional feature vector that feeds the downstream
//! classifier:
//!
//! * without RMFs: `[mf_0, …, mf_{N−1}]` (the `mf-*` designs);
//! * with RMFs: interleaved `[mf_0, rmf_0, …, mf_{N−1}, rmf_{N−1}]`
//!   (the `mf-rmf-*` designs, Fig. 9's `2N`-wide input).
//!
//! Because each filter output is a dot product over however many bins the
//! trace actually has, the feature vector's *dimension* is independent of the
//! readout duration — the property that lets HERQULES shorten readout without
//! retraining (paper §5.2). Truncation is expressed by passing per-qubit bin
//! budgets to [`FilterBank::features_truncated`].

use readout_dsp::filters::MatchedFilter;
use readout_sim::trace::IqTrace;

/// A trained bank of per-qubit filters.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterBank {
    mfs: Vec<MatchedFilter>,
    rmfs: Option<Vec<MatchedFilter>>,
}

impl FilterBank {
    /// Builds a bank from per-qubit matched filters only.
    ///
    /// # Panics
    ///
    /// Panics if `mfs` is empty.
    pub fn new(mfs: Vec<MatchedFilter>) -> Self {
        assert!(!mfs.is_empty(), "at least one matched filter required");
        FilterBank { mfs, rmfs: None }
    }

    /// Builds a bank with relaxation matched filters.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths or are empty.
    pub fn with_rmfs(mfs: Vec<MatchedFilter>, rmfs: Vec<MatchedFilter>) -> Self {
        assert!(!mfs.is_empty(), "at least one matched filter required");
        assert_eq!(mfs.len(), rmfs.len(), "one RMF per MF required");
        FilterBank {
            mfs,
            rmfs: Some(rmfs),
        }
    }

    /// Number of qubits covered.
    pub fn n_qubits(&self) -> usize {
        self.mfs.len()
    }

    /// Whether the bank contains relaxation matched filters.
    pub fn has_rmfs(&self) -> bool {
        self.rmfs.is_some()
    }

    /// Feature vector width (`N` without RMFs, `2N` with).
    pub fn n_features(&self) -> usize {
        if self.has_rmfs() {
            2 * self.mfs.len()
        } else {
            self.mfs.len()
        }
    }

    /// The matched filter of `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn mf(&self, qubit: usize) -> &MatchedFilter {
        &self.mfs[qubit]
    }

    /// The relaxation matched filter of `qubit`, if the bank has RMFs.
    pub fn rmf(&self, qubit: usize) -> Option<&MatchedFilter> {
        self.rmfs.as_ref().map(|r| &r[qubit])
    }

    /// Assembles the feature vector from one shot's per-qubit demodulated
    /// traces (full duration).
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != self.n_qubits()`.
    pub fn features(&self, traces: &[IqTrace]) -> Vec<f64> {
        assert_eq!(
            traces.len(),
            self.n_qubits(),
            "one trace per qubit required"
        );
        let mut out = Vec::with_capacity(self.n_features());
        for (q, tr) in traces.iter().enumerate() {
            out.push(self.mfs[q].apply(tr));
            if let Some(rmfs) = &self.rmfs {
                out.push(rmfs[q].apply(tr));
            }
        }
        out
    }

    /// Assembles features using at most `bins[q]` bins of qubit `q`'s trace.
    ///
    /// Supports both the uniform-duration sweep of Fig. 11(a) (all budgets
    /// equal) and the per-qubit asymmetric durations of §5.2 / Table 3.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn features_truncated(&self, traces: &[IqTrace], bins: &[usize]) -> Vec<f64> {
        assert_eq!(
            traces.len(),
            self.n_qubits(),
            "one trace per qubit required"
        );
        assert_eq!(
            bins.len(),
            self.n_qubits(),
            "one bin budget per qubit required"
        );
        let mut out = Vec::with_capacity(self.n_features());
        for (q, tr) in traces.iter().enumerate() {
            out.push(self.mfs[q].apply_truncated(tr, bins[q]));
            if let Some(rmfs) = &self.rmfs {
                out.push(rmfs[q].apply_truncated(tr, bins[q]));
            }
        }
        out
    }

    /// Index of qubit `q`'s MF output within the feature vector.
    pub fn mf_feature_index(&self, qubit: usize) -> usize {
        if self.has_rmfs() {
            2 * qubit
        } else {
            qubit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_filter(w: f64, len: usize) -> MatchedFilter {
        MatchedFilter::from_envelope(IqTrace::new(vec![w; len], vec![0.0; len]))
    }

    fn flat_trace(v: f64, len: usize) -> IqTrace {
        IqTrace::new(vec![v; len], vec![0.0; len])
    }

    #[test]
    fn features_without_rmfs_are_mf_outputs() {
        let bank = FilterBank::new(vec![flat_filter(1.0, 4), flat_filter(2.0, 4)]);
        let f = bank.features(&[flat_trace(1.0, 4), flat_trace(1.0, 4)]);
        assert_eq!(f, vec![4.0, 8.0]);
        assert_eq!(bank.n_features(), 2);
        assert!(!bank.has_rmfs());
    }

    #[test]
    fn features_with_rmfs_interleave() {
        let bank = FilterBank::with_rmfs(
            vec![flat_filter(1.0, 4), flat_filter(1.0, 4)],
            vec![flat_filter(10.0, 4), flat_filter(20.0, 4)],
        );
        let f = bank.features(&[flat_trace(1.0, 4), flat_trace(2.0, 4)]);
        assert_eq!(f, vec![4.0, 40.0, 8.0, 160.0]);
        assert_eq!(bank.n_features(), 4);
        assert_eq!(bank.mf_feature_index(1), 2);
    }

    #[test]
    fn truncated_features_use_bin_budgets() {
        let bank = FilterBank::new(vec![flat_filter(1.0, 4), flat_filter(1.0, 4)]);
        let f = bank.features_truncated(&[flat_trace(1.0, 4), flat_trace(1.0, 4)], &[2, 3]);
        assert_eq!(f, vec![2.0, 3.0]);
    }

    #[test]
    fn truncated_budget_beyond_length_is_clamped() {
        let bank = FilterBank::new(vec![flat_filter(1.0, 4)]);
        let f = bank.features_truncated(&[flat_trace(1.0, 4)], &[99]);
        assert_eq!(f, vec![4.0]);
    }

    #[test]
    fn short_traces_yield_prefix_features() {
        // Feeding a 2-bin trace through 4-bin filters uses the overlap only —
        // the duration-agnosticism HERQULES relies on.
        let bank = FilterBank::new(vec![flat_filter(1.0, 4)]);
        let f = bank.features(&[flat_trace(1.0, 2)]);
        assert_eq!(f, vec![2.0]);
    }

    #[test]
    fn accessors_expose_filters() {
        let bank = FilterBank::with_rmfs(vec![flat_filter(1.0, 3)], vec![flat_filter(2.0, 3)]);
        assert_eq!(bank.n_qubits(), 1);
        assert_eq!(bank.mf(0).len(), 3);
        assert!(bank.rmf(0).is_some());
        assert!(FilterBank::new(vec![flat_filter(1.0, 3)]).rmf(0).is_none());
    }

    #[test]
    #[should_panic(expected = "one RMF per MF")]
    fn mismatched_rmf_count_panics() {
        let _ = FilterBank::with_rmfs(vec![flat_filter(1.0, 3)], vec![]);
    }

    #[test]
    #[should_panic(expected = "one trace per qubit")]
    fn wrong_trace_count_panics() {
        let bank = FilterBank::new(vec![flat_filter(1.0, 3)]);
        let _ = bank.features(&[]);
    }
}
