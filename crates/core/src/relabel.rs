//! Algorithm 1: semi-supervised identification of relaxation traces.
//!
//! Creating labeled `1 → 0` relaxation traces directly is implausible —
//! relaxation is an uncontrolled stochastic process. The paper's Algorithm 1
//! refines the existing ground/excited calibration labels instead: reduce
//! every trace to its Mean Trace Value (MTV), compute the per-class MTV
//! centroids, and re-label as *relaxation* every excited-labeled trace whose
//! MTV falls within a circle around the ground centroid of radius equal to
//! half the centroid distance.
//!
//! The method deliberately conflates (a) mid-readout relaxations, (b)
//! relaxations that happened before the readout, and (c) initialization
//! errors — all three look like "excited label, ground-like trace" and all
//! three are useful training signal for the relaxation matched filter.

use readout_sim::trace::{IqPoint, IqTrace};

/// Output of [`identify_relaxation_traces`].
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxationLabels {
    /// Indices into the excited-labeled input set that were re-labeled as
    /// relaxation traces.
    pub relaxation_indices: Vec<usize>,
    /// MTV centroid of the ground-labeled traces.
    pub centroid_ground: IqPoint,
    /// MTV centroid of the excited-labeled traces.
    pub centroid_excited: IqPoint,
    /// The circle radius used (half the centroid distance).
    pub radius: f64,
}

impl RelaxationLabels {
    /// Fraction of excited-labeled traces identified as relaxations.
    pub fn relaxation_fraction(&self, n_excited: usize) -> f64 {
        if n_excited == 0 {
            0.0
        } else {
            self.relaxation_indices.len() as f64 / n_excited as f64
        }
    }
}

/// Runs Algorithm 1 on one qubit's demodulated traces.
///
/// `ground` and `excited` are the traces whose calibration labels are `0` and
/// `1` respectively. Returns the indices (into `excited`) of traces
/// re-labeled as relaxations, together with the geometry used, so callers can
/// plot the Fig. 8(a) scatter.
///
/// # Panics
///
/// Panics if either class is empty.
pub fn identify_relaxation_traces(ground: &[&IqTrace], excited: &[&IqTrace]) -> RelaxationLabels {
    assert!(!ground.is_empty(), "ground class must be non-empty");
    assert!(!excited.is_empty(), "excited class must be non-empty");

    let centroid = |traces: &[&IqTrace]| -> IqPoint {
        let mut acc = IqPoint::ZERO;
        for tr in traces {
            acc += tr.mtv();
        }
        acc * (1.0 / traces.len() as f64)
    };
    let centroid_ground = centroid(ground);
    let centroid_excited = centroid(excited);
    let radius = centroid_ground.distance(centroid_excited) / 2.0;

    let relaxation_indices = excited
        .iter()
        .enumerate()
        .filter(|(_, tr)| tr.mtv().distance(centroid_ground) <= radius)
        .map(|(i, _)| i)
        .collect();

    RelaxationLabels {
        relaxation_indices,
        centroid_ground,
        centroid_excited,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use readout_sim::noise::GaussianNoise;

    /// Builds a flat trace around the given IQ mean with noise.
    fn trace_around(mean: IqPoint, sigma: f64, len: usize, rng: &mut StdRng) -> IqTrace {
        let mut g = GaussianNoise::new(sigma);
        (0..len)
            .map(|_| IqPoint::new(mean.i + g.sample(rng), mean.q + g.sample(rng)))
            .collect()
    }

    /// A trace that sits at `a` for the first `k` bins and `b` afterwards —
    /// the MTV interpolates between the two.
    fn switching_trace(a: IqPoint, b: IqPoint, k: usize, len: usize) -> IqTrace {
        (0..len).map(|t| if t < k { a } else { b }).collect()
    }

    const G: IqPoint = IqPoint { i: -2.0, q: 0.0 };
    const E: IqPoint = IqPoint { i: 2.0, q: 0.0 };

    #[test]
    fn clean_classes_produce_no_relabels() {
        let mut rng = StdRng::seed_from_u64(1);
        let ground: Vec<IqTrace> = (0..50)
            .map(|_| trace_around(G, 0.05, 20, &mut rng))
            .collect();
        let excited: Vec<IqTrace> = (0..50)
            .map(|_| trace_around(E, 0.05, 20, &mut rng))
            .collect();
        let g: Vec<&IqTrace> = ground.iter().collect();
        let e: Vec<&IqTrace> = excited.iter().collect();
        let labels = identify_relaxation_traces(&g, &e);
        assert!(labels.relaxation_indices.is_empty());
        assert!((labels.radius - 2.0).abs() < 0.05);
    }

    #[test]
    fn early_relaxers_are_identified() {
        let mut rng = StdRng::seed_from_u64(2);
        let ground: Vec<IqTrace> = (0..50)
            .map(|_| trace_around(G, 0.05, 20, &mut rng))
            .collect();
        let mut excited: Vec<IqTrace> = (0..45)
            .map(|_| trace_around(E, 0.05, 20, &mut rng))
            .collect();
        // Five traces that relax after 2 of 20 bins → MTV ≈ 0.9·G + 0.1·E,
        // well inside the ground circle.
        for _ in 0..5 {
            excited.push(switching_trace(E, G, 2, 20));
        }
        let g: Vec<&IqTrace> = ground.iter().collect();
        let e: Vec<&IqTrace> = excited.iter().collect();
        let labels = identify_relaxation_traces(&g, &e);
        assert_eq!(labels.relaxation_indices, vec![45, 46, 47, 48, 49]);
        assert!((labels.relaxation_fraction(e.len()) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn late_relaxers_are_not_identified() {
        // Relaxing in the last bin leaves the MTV near the excited centroid;
        // Algorithm 1 is conservative by construction.
        let mut rng = StdRng::seed_from_u64(3);
        let ground: Vec<IqTrace> = (0..50)
            .map(|_| trace_around(G, 0.05, 20, &mut rng))
            .collect();
        let mut excited: Vec<IqTrace> = (0..49)
            .map(|_| trace_around(E, 0.05, 20, &mut rng))
            .collect();
        excited.push(switching_trace(E, G, 19, 20));
        let g: Vec<&IqTrace> = ground.iter().collect();
        let e: Vec<&IqTrace> = excited.iter().collect();
        let labels = identify_relaxation_traces(&g, &e);
        assert!(labels.relaxation_indices.is_empty());
    }

    #[test]
    fn init_errors_count_as_relaxations() {
        // A trace that sits at G the whole time but is labeled excited (an
        // initialization error) must be captured — the paper treats (a), (b),
        // (c) identically.
        let mut rng = StdRng::seed_from_u64(4);
        let ground: Vec<IqTrace> = (0..20)
            .map(|_| trace_around(G, 0.05, 20, &mut rng))
            .collect();
        let mut excited: Vec<IqTrace> = (0..19)
            .map(|_| trace_around(E, 0.05, 20, &mut rng))
            .collect();
        excited.push(trace_around(G, 0.05, 20, &mut rng));
        let g: Vec<&IqTrace> = ground.iter().collect();
        let e: Vec<&IqTrace> = excited.iter().collect();
        let labels = identify_relaxation_traces(&g, &e);
        assert_eq!(labels.relaxation_indices, vec![19]);
    }

    #[test]
    fn overlapping_classes_give_noisy_but_bounded_labels() {
        // Poorly separated qubit (the paper's qubit 2): the circle then
        // captures a large fraction of genuinely excited traces. The function
        // must still behave deterministically and within bounds.
        let mut rng = StdRng::seed_from_u64(5);
        let near_g = IqPoint::new(-0.1, 0.0);
        let near_e = IqPoint::new(0.1, 0.0);
        let ground: Vec<IqTrace> = (0..100)
            .map(|_| trace_around(near_g, 1.0, 20, &mut rng))
            .collect();
        let excited: Vec<IqTrace> = (0..100)
            .map(|_| trace_around(near_e, 1.0, 20, &mut rng))
            .collect();
        let g: Vec<&IqTrace> = ground.iter().collect();
        let e: Vec<&IqTrace> = excited.iter().collect();
        let labels = identify_relaxation_traces(&g, &e);
        assert!(labels.relaxation_indices.len() < e.len());
        assert!(labels.radius < 0.5);
    }

    #[test]
    fn geometry_is_reported() {
        let ground = [IqTrace::new(vec![-1.0], vec![0.0])];
        let excited = [IqTrace::new(vec![3.0], vec![0.0])];
        let g: Vec<&IqTrace> = ground.iter().collect();
        let e: Vec<&IqTrace> = excited.iter().collect();
        let labels = identify_relaxation_traces(&g, &e);
        assert_eq!(labels.centroid_ground, IqPoint::new(-1.0, 0.0));
        assert_eq!(labels.centroid_excited, IqPoint::new(3.0, 0.0));
        assert!((labels.radius - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_ground_panics() {
        let excited = [IqTrace::new(vec![1.0], vec![0.0])];
        let e: Vec<&IqTrace> = excited.iter().collect();
        let _ = identify_relaxation_traces(&[], &e);
    }
}
