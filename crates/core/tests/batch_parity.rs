//! Parity: the batched (fused-kernel) inference path must agree with the
//! per-shot path for every design.
//!
//! * `centroid` and `mf`-threshold decisions are compared shot by shot — the
//!   batched demodulation and MTV accumulation reproduce the per-shot
//!   floating-point operations exactly, so predictions must be identical.
//! * Designs whose features go through the fused `[shots × 2T] · [2T × F]`
//!   matmul (`mf`, `mf-svm`, `mf-nn`, `mf-rmf-*`) may reassociate the sum
//!   over raw samples; feature values are pinned to ≤ 1e-12 relative error
//!   (`fused` module tests) and the discrete predictions must still match.

use herqles_core::designs::DesignKind;
use herqles_core::trainer::{ReadoutTrainer, TrainerConfig};
use herqles_core::{evaluate, Discriminator, FilterBank, FusedFilterKernel};
use readout_dsp::Demodulator;
use readout_nn::net::TrainConfig;
use readout_sim::trace::IqTrace;
use readout_sim::{ChipConfig, Dataset, ShotBatch};

fn quick_config() -> TrainerConfig {
    TrainerConfig {
        nn_train: TrainConfig {
            epochs: 25,
            ..TrainerConfig::default().nn_train
        },
        baseline_train: TrainConfig {
            epochs: 4,
            ..TrainerConfig::default().baseline_train
        },
        ..TrainerConfig::default()
    }
}

fn trained_designs() -> (Dataset, Vec<usize>, Vec<Box<dyn Discriminator>>) {
    let config = ChipConfig::two_qubit_test();
    let dataset = Dataset::generate(&config, 40, 4321);
    let split = dataset.split(0.5, 0.0, 11);
    let mut trainer = ReadoutTrainer::with_config(&dataset, &split.train, quick_config());
    let designs = DesignKind::ALL.iter().map(|&k| trainer.train(k)).collect();
    (dataset, split.test, designs)
}

#[test]
fn batched_predictions_match_per_shot_for_every_design() {
    let (dataset, test_idx, designs) = trained_designs();
    let batch = ShotBatch::from_dataset(&dataset, &test_idx);
    for disc in &designs {
        let batched = disc.discriminate_shot_batch(&batch);
        assert_eq!(batched.len(), test_idx.len(), "{}", disc.name());
        for (pos, &i) in test_idx.iter().enumerate() {
            let per_shot = disc.discriminate(&dataset.shots[i].raw);
            assert_eq!(
                batched[pos],
                per_shot,
                "{} diverges on shot {i}",
                disc.name()
            );
        }
    }
}

#[test]
fn buffered_batch_discrimination_matches_allocating_path_for_every_design() {
    let (dataset, test_idx, designs) = trained_designs();
    let batch = ShotBatch::from_dataset(&dataset, &test_idx);
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    for disc in &designs {
        let reference = disc.discriminate_shot_batch(&batch);
        // Run twice through the same warm buffers: results must be stable
        // and identical to the allocating entry point.
        for _ in 0..2 {
            disc.discriminate_shot_batch_into(&batch, &mut scratch, &mut out);
            assert_eq!(out, reference, "{} diverges through buffers", disc.name());
        }
    }
}

#[test]
fn trace_slice_batches_route_through_the_same_path() {
    let (dataset, test_idx, designs) = trained_designs();
    let raws: Vec<&IqTrace> = test_idx.iter().map(|&i| &dataset.shots[i].raw).collect();
    let batch = ShotBatch::from_dataset(&dataset, &test_idx);
    for disc in &designs {
        assert_eq!(
            disc.discriminate_batch(&raws),
            disc.discriminate_shot_batch(&batch),
            "{}",
            disc.name()
        );
    }
}

#[test]
fn ragged_batches_fall_back_to_per_shot() {
    let (dataset, test_idx, designs) = trained_designs();
    // One truncated trace makes the batch ragged; duration-agnostic designs
    // must still discriminate it per shot.
    let short = dataset.shots[test_idx[0]].raw.truncated(400);
    let raws = vec![&short, &dataset.shots[test_idx[1]].raw];
    for disc in &designs {
        if disc.name() == "baseline" {
            continue; // welded to the full window by construction
        }
        let out = disc.discriminate_batch(&raws);
        assert_eq!(out[0], disc.discriminate(&short), "{}", disc.name());
        assert_eq!(
            out[1],
            disc.discriminate(&dataset.shots[test_idx[1]].raw),
            "{}",
            disc.name()
        );
    }
}

#[test]
fn uniformly_truncated_batches_match_per_shot() {
    // A uniform shorter-than-window batch exercises every design's
    // "kernel does not match, fall back" branch in one call.
    let (dataset, test_idx, designs) = trained_designs();
    let cut = 300;
    let shorts: Vec<IqTrace> = test_idx
        .iter()
        .take(6)
        .map(|&i| dataset.shots[i].raw.truncated(cut))
        .collect();
    let refs: Vec<&IqTrace> = shorts.iter().collect();
    let batch = ShotBatch::try_from_traces(&refs).unwrap();
    for disc in &designs {
        if disc.name() == "baseline" {
            continue;
        }
        let batched = disc.discriminate_shot_batch(&batch);
        for (pos, short) in shorts.iter().enumerate() {
            assert_eq!(batched[pos], disc.discriminate(short), "{}", disc.name());
        }
    }
}

#[test]
fn evaluate_agrees_with_manual_per_shot_accuracy() {
    let (dataset, test_idx, designs) = trained_designs();
    for disc in &designs {
        let result = evaluate(disc.as_ref(), &dataset, &test_idx);
        let manual = test_idx
            .iter()
            .filter(|&&i| disc.discriminate(&dataset.shots[i].raw) == dataset.shots[i].prepared)
            .count() as f64
            / test_idx.len() as f64;
        assert!(
            (result.state_accuracy() - manual).abs() < 1e-12,
            "{}: batched {} vs per-shot {}",
            disc.name(),
            result.state_accuracy(),
            manual
        );
    }
}

#[test]
fn fused_kernel_feature_parity_with_rmf_bank() {
    // Feature-level parity at the kernel boundary, including interleaved
    // MF/RMF columns: ≤ 1e-12 relative error from matmul reassociation.
    let config = ChipConfig::two_qubit_test();
    let dataset = Dataset::generate(&config, 30, 99);
    let split = dataset.split(0.5, 0.0, 3);
    let mut trainer = ReadoutTrainer::with_config(&dataset, &split.train, quick_config());
    let bank = FilterBank::with_rmfs(
        trainer.matched_filters().to_vec(),
        trainer.relaxation_filters().to_vec(),
    );
    let demod = Demodulator::new(&config);
    let kernel = FusedFilterKernel::new(&demod, &bank);
    let batch = ShotBatch::from_dataset(&dataset, &split.test);
    let mut fused = Vec::new();
    kernel.features_batch(&batch, &mut fused);
    for (pos, &i) in split.test.iter().enumerate() {
        let reference = bank.features(&demod.demodulate(&dataset.shots[i].raw));
        let row = &fused[pos * kernel.n_features()..(pos + 1) * kernel.n_features()];
        for (f, r) in row.iter().zip(&reference) {
            let rel = (f - r).abs() / r.abs().max(1.0);
            assert!(rel <= 1e-12, "shot {i}: fused {f} vs per-shot {r}");
        }
    }
}
