//! Kernel-dispatch pin: the SIMD backend must be invisible to physics.
//!
//! With `HERQLES_KERNEL=scalar` and `HERQLES_KERNEL=auto` (CI runs the
//! whole suite under both), every fused-kernel discriminator design — `mf`,
//! `mf-svm`, `mf-nn`, `mf-rmf-svm`, `mf-rmf-nn` — must produce **identical
//! classifications** on a seeded dataset: backends differ only by
//! floating-point reassociation and FMA contraction, far inside the margin
//! of any physically plausible shot. Feature *scores* are compared under a
//! tolerance (they legitimately differ in the last ulps); predicted labels
//! are compared exactly.
//!
//! One `#[test]` on purpose: kernel selection is process-global, and a
//! concurrent test observing a mid-switch backend would race the
//! assertions.

use herqles_core::designs::DesignKind;
use herqles_core::trainer::{ReadoutTrainer, TrainerConfig};
use herqles_core::{Discriminator, FilterBank, FusedFilterKernel};
use herqles_num::kernel::{active_kernel_name, avx2_available, select_kernel, KernelBackend};
use readout_dsp::Demodulator;
use readout_nn::TrainConfig;
use readout_sim::{ChipConfig, Dataset, ShotBatch};

/// Score tolerance: relative to the feature magnitude, a few hundred f64
/// ULP-equivalents of headroom over what reassociating a ~2·T-long fused
/// filter dot can move (the kernel-parity suite bounds the primitive at
/// 32 ULPs of the absolute-value dot; features here are well-conditioned).
const SCORE_RTOL: f64 = 1e-9;

/// The five designs with fused batched kernels (the baseline FNN and the
/// centroid strawman ride the same GEMMs through their NN / mean paths but
/// are not part of Table 1's fused-kernel family).
const FUSED_DESIGNS: [DesignKind; 5] = [
    DesignKind::Mf,
    DesignKind::MfSvm,
    DesignKind::MfNn,
    DesignKind::MfRmfSvm,
    DesignKind::MfRmfNn,
];

#[test]
fn scalar_and_dispatched_backends_classify_identically() {
    // The suite honors the CI matrix: whatever HERQLES_KERNEL requested
    // must actually be the live backend before this test starts switching.
    match std::env::var("HERQLES_KERNEL").as_deref() {
        Ok("scalar") => assert_eq!(active_kernel_name(), "scalar"),
        Ok("avx2") => assert_eq!(active_kernel_name(), "avx2"),
        _ => assert_eq!(
            active_kernel_name(),
            if avx2_available() { "avx2" } else { "scalar" }
        ),
    }
    let env_backend = match active_kernel_name() {
        "avx2" => KernelBackend::Avx2,
        _ => KernelBackend::Scalar,
    };

    let chip = ChipConfig::two_qubit_test();
    let train_ds = Dataset::generate(&chip, 40, 2024);
    let eval_ds = Dataset::generate(&chip, 250, 777);
    let train_idx: Vec<usize> = (0..train_ds.shots.len()).collect();
    let config = TrainerConfig {
        nn_train: TrainConfig {
            epochs: 40,
            ..TrainerConfig::default().nn_train
        },
        ..TrainerConfig::default()
    };
    let batch: ShotBatch = ShotBatch::from_shots(&eval_ds.shots);

    // Training itself rides the GEMMs, so the trained weights depend on the
    // backend that was live during training. Train once on the *scalar*
    // reference; the pin below then isolates inference dispatch.
    select_kernel(KernelBackend::Scalar).expect("scalar is always selectable");
    let mut trainer = ReadoutTrainer::with_config(&train_ds, &train_idx, config);
    let designs: Vec<(DesignKind, Box<dyn Discriminator>)> = FUSED_DESIGNS
        .into_iter()
        .map(|kind| (kind, trainer.train(kind)))
        .collect();

    for (kind, disc) in &designs {
        select_kernel(KernelBackend::Scalar).expect("scalar is always selectable");
        let labels_scalar = disc.discriminate_shot_batch(&batch);
        let dispatched = select_kernel(KernelBackend::Auto).expect("auto is always selectable");
        let labels_auto = disc.discriminate_shot_batch(&batch);
        assert_eq!(
            labels_scalar, labels_auto,
            "{kind}: classifications must be identical under scalar vs {dispatched} dispatch"
        );
    }

    // Scores under tolerance: the fused demod + matched-filter features of
    // the full bank, scalar vs dispatched, on the same compiled kernel.
    let demod = Demodulator::new(&chip);
    let bank = FilterBank::with_rmfs(
        trainer.matched_filters().to_vec(),
        trainer.relaxation_filters().to_vec(),
    );
    let kernel: FusedFilterKernel = FusedFilterKernel::new(&demod, &bank);
    let mut scores_scalar = Vec::new();
    let mut scores_auto = Vec::new();
    select_kernel(KernelBackend::Scalar).expect("scalar is always selectable");
    kernel.features_batch(&batch, &mut scores_scalar);
    select_kernel(KernelBackend::Auto).expect("auto is always selectable");
    kernel.features_batch(&batch, &mut scores_auto);
    assert_eq!(scores_scalar.len(), scores_auto.len());
    for (i, (s, a)) in scores_scalar.iter().zip(&scores_auto).enumerate() {
        let rel = (s - a).abs() / s.abs().max(1.0);
        assert!(
            rel <= SCORE_RTOL,
            "feature {i}: scalar {s} vs dispatched {a} (rel {rel:e})"
        );
    }

    // Leave the process in the state the environment asked for.
    select_kernel(env_backend).expect("restoring the env-requested backend");
}
