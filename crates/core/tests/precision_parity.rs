//! f32 ↔ f64 batched-discrimination parity.
//!
//! The precision-generic pipeline promises that `R = f64` is the historical
//! path bit for bit (that pin lives in `batch_parity.rs` and the `_r`
//! delegation test below) and that `R = f32` is *numerically* equivalent:
//! the single-precision fused kernels may round differently, but state
//! assignments flip only for shots sitting within float-epsilon of a
//! decision boundary. These tests pin that agreement at ≥ 99.9 % of shots
//! for every Table 1 design on a seeded dataset.

use herqles_core::designs::DesignKind;
use herqles_core::trainer::{ReadoutTrainer, TrainerConfig};
use herqles_core::{Discriminator, PrecisionDiscriminator};
use readout_nn::TrainConfig;
use readout_sim::{ChipConfig, Dataset, ShotBatch};

/// Shots per basis state of the evaluation dataset (2-qubit chip → ×4).
const EVAL_SHOTS_PER_STATE: usize = 500;

fn setup() -> (ReadoutTrainer<'static>, ShotBatch, ShotBatch<f32>) {
    let cfg = ChipConfig::two_qubit_test();
    // The trainer borrows the dataset; leak both so the helper can hand the
    // trainer out by value (test-only, bounded).
    let train_ds: &'static Dataset = Box::leak(Box::new(Dataset::generate(&cfg, 40, 2024)));
    let eval_ds: &'static Dataset =
        Box::leak(Box::new(Dataset::generate(&cfg, EVAL_SHOTS_PER_STATE, 777)));
    let train_idx: Vec<usize> = (0..train_ds.shots.len()).collect();
    let config = TrainerConfig {
        nn_train: TrainConfig {
            epochs: 40,
            ..TrainerConfig::default().nn_train
        },
        baseline_train: TrainConfig {
            epochs: 4,
            ..TrainerConfig::default().baseline_train
        },
        ..TrainerConfig::default()
    };
    let trainer = ReadoutTrainer::with_config(train_ds, &train_idx, config);
    let batch64: ShotBatch = ShotBatch::from_shots(&eval_ds.shots);
    let batch32: ShotBatch<f32> = ShotBatch::from_shots(&eval_ds.shots);
    (trainer, batch64, batch32)
}

fn assert_agreement<D: Discriminator + PrecisionDiscriminator<f32>>(
    disc: &D,
    batch64: &ShotBatch,
    batch32: &ShotBatch<f32>,
) {
    let states64 = disc.discriminate_shot_batch(batch64);
    let states32 = disc.discriminate_shot_batch_r(batch32);
    assert_eq!(states64.len(), states32.len());
    let agree = states64
        .iter()
        .zip(&states32)
        .filter(|(a, b)| a == b)
        .count();
    let frac = agree as f64 / states64.len() as f64;
    assert!(
        frac >= 0.999,
        "{}: f32 agreement {frac:.5} ({agree}/{})",
        disc.name(),
        states64.len()
    );
}

#[test]
fn fused_mf_f32_assignments_agree_with_f64() {
    let (mut trainer, batch64, batch32) = setup();
    let disc = trainer.train_mf();
    assert_agreement(&disc, &batch64, &batch32);
}

#[test]
fn centroid_f32_assignments_agree_with_f64() {
    let (mut trainer, batch64, batch32) = setup();
    let disc = trainer.train_centroid();
    assert_agreement(&disc, &batch64, &batch32);
}

#[test]
fn svm_heads_f32_assignments_agree_with_f64() {
    let (mut trainer, batch64, batch32) = setup();
    for with_rmf in [false, true] {
        let disc = trainer.train_svm(with_rmf);
        assert_agreement(&disc, &batch64, &batch32);
    }
}

#[test]
fn nn_heads_f32_assignments_agree_with_f64() {
    let (mut trainer, batch64, batch32) = setup();
    for with_rmf in [false, true] {
        let disc = trainer.train_nn(with_rmf);
        assert_agreement(&disc, &batch64, &batch32);
    }
}

#[test]
fn baseline_f32_assignments_agree_with_f64() {
    let (mut trainer, batch64, batch32) = setup();
    let disc = trainer.train_baseline();
    assert_agreement(&disc, &batch64, &batch32);
}

/// The `f64` instantiation of the generic entry point is the ordinary
/// `Discriminator` path — not merely close, the same decisions.
#[test]
fn f64_generic_entry_point_is_bit_identical() {
    let (mut trainer, batch64, _) = setup();
    let disc = trainer.train_mf();
    let via_trait = disc.discriminate_shot_batch(&batch64);
    let via_generic = PrecisionDiscriminator::<f64>::discriminate_shot_batch_r(&disc, &batch64);
    assert_eq!(via_trait, via_generic);
    // And through a trait object, which only the blanket impl can serve.
    let boxed: Box<dyn Discriminator> = trainer.train(DesignKind::Mf);
    let via_dyn = boxed.as_ref().discriminate_shot_batch_r(&batch64);
    assert_eq!(via_trait, via_dyn);
}
