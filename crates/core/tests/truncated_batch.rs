//! Batched truncated-duration inference parity: the cached per-duration
//! fused kernels must agree with the per-shot truncated path (the two differ
//! only by floating-point reassociation inside the GEMM), and full-budget
//! truncated batches must equal the untruncated fused hot path **exactly**
//! (identical prefix weights → identical GEMM).

use herqles_core::designs::DesignKind;
use herqles_core::{Discriminator, FusedFilterKernel, ReadoutTrainer, TruncatedKernelCache};
use readout_sim::trace::IqTrace;
use readout_sim::{ChipConfig, Dataset};

fn trained(kind: DesignKind) -> (Dataset, Vec<usize>, Box<dyn Discriminator>) {
    let cfg = ChipConfig::two_qubit_test();
    let ds = Dataset::generate(&cfg, 60, 23);
    let split = ds.split(0.5, 0.0, 2);
    let mut trainer = ReadoutTrainer::new(&ds, &split.train);
    let disc = trainer.train(kind);
    (ds, split.test, disc)
}

fn raws<'a>(ds: &'a Dataset, idx: &[usize]) -> Vec<&'a IqTrace> {
    idx.iter().map(|&i| &ds.shots[i].raw).collect()
}

#[test]
fn batched_truncated_agrees_with_per_shot_walk() {
    // The fused prefix kernel reassociates the per-bin sums; decisions may
    // flip only for shots sitting exactly on a decision boundary, which a
    // 1e-12 relative feature error cannot systematically produce.
    for kind in [DesignKind::Mf, DesignKind::MfRmfSvm, DesignKind::MfNn] {
        let (ds, test, disc) = trained(kind);
        let traces = raws(&ds, &test);
        for bins in [3usize, 10, 20] {
            let budgets = vec![bins; disc.n_qubits()];
            let batched = disc
                .discriminate_truncated_batch(&traces, &budgets)
                .expect("design supports truncation");
            let per_shot: Vec<_> = traces
                .iter()
                .map(|r| disc.discriminate_truncated(r, &budgets).unwrap())
                .collect();
            let agree = batched
                .iter()
                .zip(&per_shot)
                .filter(|(a, b)| a == b)
                .count();
            let frac = agree as f64 / batched.len() as f64;
            assert!(
                frac >= 0.99,
                "{kind}: bins={bins}: batched/per-shot agreement {frac}"
            );
        }
    }
}

#[test]
fn full_budget_truncated_batch_equals_untruncated_batch_exactly() {
    // With the budget at (or beyond) the full window the prefix kernel's
    // weight plane is the full kernel's, so the batched decisions must be
    // bit-identical to the ordinary fused hot path.
    let (ds, test, disc) = trained(DesignKind::Mf);
    let traces = raws(&ds, &test);
    let full = ds.config.n_bins();
    for budget in [full, full + 7] {
        let budgets = vec![budget; disc.n_qubits()];
        let truncated = disc
            .discriminate_truncated_batch(&traces, &budgets)
            .unwrap();
        assert_eq!(truncated, disc.discriminate_batch(&traces));
    }
}

#[test]
fn asymmetric_budgets_are_honoured_by_the_fused_path() {
    let (ds, test, disc) = trained(DesignKind::MfRmfSvm);
    let traces = raws(&ds, &test);
    let budgets = [20usize, 4];
    let batched = disc
        .discriminate_truncated_batch(&traces, &budgets)
        .unwrap();
    let per_shot: Vec<_> = traces
        .iter()
        .map(|r| disc.discriminate_truncated(r, &budgets).unwrap())
        .collect();
    let agree = batched
        .iter()
        .zip(&per_shot)
        .filter(|(a, b)| a == b)
        .count();
    assert!(agree as f64 / batched.len() as f64 >= 0.99);
}

#[test]
fn cache_compiles_each_duration_once() {
    let cfg = ChipConfig::two_qubit_test();
    let ds = Dataset::generate(&cfg, 30, 5);
    let split = ds.split(0.5, 0.0, 2);
    let mut trainer = ReadoutTrainer::new(&ds, &split.train);
    let demod = readout_dsp::Demodulator::new(&cfg);
    let bank = herqles_core::FilterBank::new(trainer.matched_filters().to_vec());

    let cache = TruncatedKernelCache::new();
    assert!(cache.is_empty());
    let a = cache.get_or_compile(&demod, &bank, &[4, 4]);
    let b = cache.get_or_compile(&demod, &bank, &[4, 4]);
    assert_eq!(cache.len(), 1, "same budgets must hit the cache");
    assert!(std::sync::Arc::ptr_eq(&a, &b), "cache must return the memo");
    let _ = cache.get_or_compile(&demod, &bank, &[4, 5]);
    assert_eq!(cache.len(), 2, "distinct budgets compile distinct kernels");

    // A cloned cache carries the compiled kernels (same weights).
    let cloned = cache.clone();
    assert_eq!(cloned.len(), 2);
    let c = cloned.get_or_compile(&demod, &bank, &[4, 4]);
    assert_eq!(*c, *a);

    // The compiled prefix kernel is exactly new_truncated's output.
    let direct: FusedFilterKernel = FusedFilterKernel::new_truncated(&demod, &bank, &[4, 4]);
    assert_eq!(*a, direct);
}
