//! Analytic FPGA resource and latency model for qubit-readout datapaths.
//!
//! The paper estimates hardware cost with hls4ml + Vivado HLS targeting a
//! Xilinx Zynq MPSoC (`xczu7ev`). This crate replaces the synthesis flow with
//! a component-level analytic model — the quantities the paper reports
//! (Tables 4, Figs. 4c / 7d / 14a) are arithmetic consequences of
//!
//! * how many multiply-accumulate engines a network needs at a given
//!   **reuse factor** (RF: one physical multiplier shared across RF logical
//!   multiplications),
//! * where those multipliers live (DSP slices until the budget runs out,
//!   LUT fabric after),
//! * where the weights live (BRAM until the budget runs out, LUT-RAM after),
//! * and the fixed signal-processing frontend (digital downconversion and
//!   matched-filter MACs per qubit) that HERQULES keeps in fabric.
//!
//! Absolute constants are calibrated to land in the regime the paper reports
//! (HERQULES ≈ 7–8 % LUT on `xczu7ev`; the baseline FNN several times
//! over-capacity); the *relations* — baseline infeasibility, marginal RMF
//! cost, orders-of-magnitude latency gap — are structural and robust to the
//! constants. See `DESIGN.md` for the substitution argument.
//!
//! # Example
//!
//! ```
//! use fpga_model::{FpgaDevice, NetworkShape, PipelineSpec, estimate_pipeline};
//!
//! // HERQULES mf-rmf-nn head for five qubits at reuse factor 4.
//! let spec = PipelineSpec::herqules(5, true, 4);
//! let est = estimate_pipeline(&spec);
//! let util = est.utilization(&FpgaDevice::XCZU7EV);
//! assert!(util.lut_pct < 14.0);
//! ```

pub mod device;
pub mod estimate;
pub mod network;
pub mod pipeline;
pub mod scaling;

pub use device::FpgaDevice;
pub use estimate::{estimate_nn_engine, estimate_pipeline, ResourceEstimate, Utilization};
pub use network::NetworkShape;
pub use pipeline::PipelineSpec;
