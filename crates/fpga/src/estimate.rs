//! The resource/latency estimator.
//!
//! # Cost model
//!
//! **Multipliers.** A layer with `M` MACs at reuse factor `RF` needs
//! `ceil(M/RF)` physical multiply-accumulate engines. Engines map to DSP
//! slices first (one 16-bit engine per DSP, as hls4ml does by default); once
//! a configurable share of the device's DSPs is exhausted, the remainder are
//! built in fabric at [`CostModel::lut_per_fabric_mult`] LUTs each. Every
//! engine additionally pays [`CostModel::lut_per_engine_ctrl`] LUTs of
//! accumulate/mux/control logic.
//!
//! **Weights.** Parameter storage fills BRAM first; weights that do not fit
//! in the configurable BRAM share spill into LUT-RAM at 64 bits/LUT (plus
//! addressing overhead folded into the constant).
//!
//! **Frontend.** Each demodulator (digital downconversion: dual mixer +
//! accumulator + NCO phase stepper) and each matched-filter MAC pair has a
//! fixed LUT/FF/DSP price, calibrated so the five-qubit HERQULES pipeline
//! lands at the paper's ≈7–8 % LUT on `xczu7ev`.
//!
//! **Latency.** Layers are pipelined back to back:
//! `Σ_l (RF_eff + ceil(log2 fan_in) + pipe_regs)` where `RF_eff =
//! ceil(macs_l / engines_l)` is the true per-engine serialization. The
//! baseline additionally pays its input buffering; HERQULES's filters stream
//! during acquisition and add nothing after the window closes. Absolute
//! cycle counts differ from the paper's HLS reports by small factors; the
//! three-orders-of-magnitude separation of Table 4 is structural.

use crate::device::FpgaDevice;
use crate::pipeline::PipelineSpec;

/// Calibration constants of the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// LUTs per fabric-mapped (non-DSP) 16-bit multiplier.
    pub lut_per_fabric_mult: u64,
    /// LUTs of routing/partitioning per stored weight (hls4ml fully
    /// partitions weight arrays into fabric for dense layers; this is the
    /// term that keeps the baseline over-capacity even at huge reuse
    /// factors, as in Table 4's RF=1000 row).
    pub lut_per_weight_routing: f64,
    /// Fixed per-pipeline infrastructure (AXI/DMA, trigger, state machine),
    /// paid once per readout pipeline.
    pub lut_fixed_pipeline: u64,
    /// LUTs of accumulator/mux/control per MAC engine (DSP or fabric).
    pub lut_per_engine_ctrl: u64,
    /// Fraction of device DSPs the network engine may claim before spilling
    /// multipliers to fabric.
    pub dsp_budget_frac: f64,
    /// Fraction of device BRAM available for weights before spilling to
    /// LUT-RAM.
    pub bram_budget_frac: f64,
    /// LUTs per demodulation block (per qubit).
    pub lut_per_demod: u64,
    /// DSPs per demodulation block (the two mixers).
    pub dsp_per_demod: u64,
    /// LUTs per matched-filter MAC engine (envelope ROM addressing +
    /// accumulator).
    pub lut_per_filter_mac: u64,
    /// LUTs per buffered raw input word (ping-pong buffer + fan-out).
    pub lut_per_buffered_input: u64,
    /// Fixed LUT overhead per dense layer (bias add, activation, handshake).
    pub lut_per_layer_fixed: u64,
    /// FFs as a fraction of LUTs (empirical pipeline-register ratio).
    pub ff_per_lut: f64,
    /// Pipeline registers per layer added to latency.
    pub pipe_regs_per_layer: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            lut_per_fabric_mult: 300,
            lut_per_weight_routing: 0.55,
            lut_fixed_pipeline: 8_000,
            lut_per_engine_ctrl: 8,
            dsp_budget_frac: 0.5,
            bram_budget_frac: 0.8,
            lut_per_demod: 850,
            dsp_per_demod: 2,
            lut_per_filter_mac: 250,
            lut_per_buffered_input: 12,
            lut_per_layer_fixed: 420,
            ff_per_lut: 0.45,
            pipe_regs_per_layer: 2,
        }
    }
}

/// Absolute resource usage and inference latency of a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP slices.
    pub dsps: u64,
    /// Block RAMs.
    pub brams: u64,
    /// Cycles from end of acquisition to the discriminated state.
    pub latency_cycles: u64,
}

/// Resource usage as percentages of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// LUT percentage (may exceed 100 for infeasible designs).
    pub lut_pct: f64,
    /// FF percentage.
    pub ff_pct: f64,
    /// DSP percentage.
    pub dsp_pct: f64,
    /// BRAM percentage.
    pub bram_pct: f64,
}

impl Utilization {
    /// Whether the design fits the device (every resource below 100 %).
    pub fn fits(&self) -> bool {
        self.lut_pct < 100.0 && self.ff_pct < 100.0 && self.dsp_pct < 100.0 && self.bram_pct < 100.0
    }
}

impl ResourceEstimate {
    /// Utilization relative to a device.
    pub fn utilization(&self, device: &FpgaDevice) -> Utilization {
        Utilization {
            lut_pct: 100.0 * self.luts as f64 / device.luts as f64,
            ff_pct: 100.0 * self.ffs as f64 / device.ffs as f64,
            dsp_pct: 100.0 * self.dsps as f64 / device.dsps as f64,
            bram_pct: 100.0 * self.brams as f64 / device.brams as f64,
        }
    }
}

/// Estimates the network engine alone (no frontend, no buffering) — used for
/// layer-by-layer studies.
pub fn estimate_nn_engine(
    spec: &PipelineSpec,
    model: &CostModel,
    device: &FpgaDevice,
) -> ResourceEstimate {
    let mut luts: u64 = 0;
    let mut dsps: u64 = 0;
    let mut latency: u64 = 0;

    // MAC engines per layer, DSP-first mapping with a global running
    // budget. The arithmetic format scales both the DSP count per engine
    // (an fp32 engine tiles ~3 DSP slices, fp64 ~10) and the fabric cost of
    // engines that spill past the DSP budget.
    let dsp_per_engine = spec.format.dsps_per_mult();
    let fabric_mult_luts = model.lut_per_fabric_mult * spec.format.fabric_mult_factor()
        + spec.format.lut_per_float_engine();
    let dsp_budget = (device.dsps as f64 * model.dsp_budget_frac) as u64;
    let mut dsp_used: u64 = 0;
    for (fan_in, fan_out) in spec.network.layers() {
        let macs = (fan_in * fan_out) as u64;
        let engines = macs.div_ceil(spec.reuse_factor as u64);
        let dsp_engines = engines.min(dsp_budget.saturating_sub(dsp_used) / dsp_per_engine);
        let fabric_engines = engines - dsp_engines;
        dsp_used += dsp_engines * dsp_per_engine;
        luts += fabric_engines * fabric_mult_luts;
        luts += dsp_engines * spec.format.lut_per_float_engine();
        luts += engines * model.lut_per_engine_ctrl;
        luts += model.lut_per_layer_fixed + 2 * fan_out as u64;
        dsps += dsp_engines * dsp_per_engine;

        let rf_eff = macs.div_ceil(engines);
        let adder_depth = (usize::BITS - (fan_in.max(2) - 1).leading_zeros()) as u64;
        latency += rf_eff + adder_depth + model.pipe_regs_per_layer as u64;
    }

    // Weight storage: BRAM first, LUT-RAM spill after; width follows the
    // arithmetic format (16-bit fixed words, 32-bit f32, 64-bit f64).
    let weight_bits = (spec.network.n_parameters() as u64) * u64::from(spec.format.bits());
    let bram_bits_avail = (device.bram_bits() as f64 * model.bram_budget_frac) as u64;
    let bram_bits_used = weight_bits.min(bram_bits_avail);
    let brams = bram_bits_used.div_ceil(36 * 1024);
    let spill_bits = weight_bits - bram_bits_used;
    luts += spill_bits / 64;
    luts += (spec.network.n_parameters() as f64 * model.lut_per_weight_routing) as u64;

    let ffs = (luts as f64 * model.ff_per_lut) as u64;
    ResourceEstimate {
        luts,
        ffs,
        dsps,
        brams,
        latency_cycles: latency,
    }
}

/// Estimates a full readout pipeline (frontend + buffering + network) with
/// the default cost model on the paper's target device.
pub fn estimate_pipeline(spec: &PipelineSpec) -> ResourceEstimate {
    estimate_pipeline_with(spec, &CostModel::default(), &FpgaDevice::XCZU7EV)
}

/// Estimates a full readout pipeline with an explicit cost model and device.
pub fn estimate_pipeline_with(
    spec: &PipelineSpec,
    model: &CostModel,
    device: &FpgaDevice,
) -> ResourceEstimate {
    let mut est = estimate_nn_engine(spec, model, device);

    est.luts += model.lut_fixed_pipeline;
    // The frontend runs in the same datapath format as the engine: demod
    // mixers are multipliers (DSP cost scales with the format) and each
    // filter MAC pays the format's width factor plus any float
    // normalization fabric. At Fixed(16) every factor is 1/0, i.e. the
    // original calibration.
    if spec.has_demodulation {
        est.luts += spec.n_qubits as u64
            * (model.lut_per_demod + model.dsp_per_demod * spec.format.lut_per_float_engine());
        est.dsps += spec.n_qubits as u64 * model.dsp_per_demod * spec.format.dsps_per_mult();
    }
    est.luts += spec.filter_macs() as u64
        * (model.lut_per_filter_mac * spec.format.fabric_mult_factor()
            + spec.format.lut_per_float_engine());
    est.luts += spec.buffered_inputs as u64 * model.lut_per_buffered_input;

    // Buffered designs must read the whole buffer through layer 1 after the
    // window closes; streaming designs already consumed it.
    if spec.buffered_inputs > 0 {
        est.latency_cycles += (spec.buffered_inputs as u64).div_ceil(8);
    }

    est.ffs = (est.luts as f64 * model.ff_per_lut) as u64;
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkShape;

    fn herqules_rf(rf: usize) -> Utilization {
        estimate_pipeline(&PipelineSpec::herqules(5, true, rf)).utilization(&FpgaDevice::XCZU7EV)
    }

    #[test]
    fn herqules_fits_comfortably() {
        // Paper: 7.79 % LUT at the Table 4 operating point.
        let u = herqules_rf(4);
        assert!(
            u.lut_pct > 3.0 && u.lut_pct < 14.0,
            "LUT {:.2} %",
            u.lut_pct
        );
        assert!(u.fits());
        assert!(u.bram_pct < 10.0, "BRAM {:.2} %", u.bram_pct);
        assert!(u.dsp_pct < 50.0, "DSP {:.2} %", u.dsp_pct);
    }

    #[test]
    fn rmf_adds_marginal_cost() {
        // Paper Fig. 7(d): 7.15 % → 7.79 % going mf-nn → mf-rmf-nn.
        let plain = estimate_pipeline(&PipelineSpec::herqules(5, false, 4))
            .utilization(&FpgaDevice::XCZU7EV);
        let rmf = herqules_rf(4);
        assert!(rmf.lut_pct > plain.lut_pct);
        assert!(
            rmf.lut_pct - plain.lut_pct < 0.4 * plain.lut_pct,
            "RMF increment must be marginal: {:.2} vs {:.2}",
            plain.lut_pct,
            rmf.lut_pct
        );
    }

    #[test]
    fn baseline_is_infeasible_on_xczu7ev() {
        // Paper Table 4: 200–470 % LUT depending on RF.
        for rf in [200, 500, 1000] {
            let spec = PipelineSpec::baseline(NetworkShape::baseline_fnn(), rf);
            let u = estimate_pipeline(&spec).utilization(&FpgaDevice::XCZU7EV);
            assert!(
                !u.fits(),
                "baseline at RF {rf} must not fit ({:.1} % LUT)",
                u.lut_pct
            );
        }
    }

    #[test]
    fn forty_pct_baseline_several_times_over_capacity() {
        // Paper Fig. 4(c): ≈4× the available LUTs at RF 25.
        let spec = PipelineSpec::baseline(NetworkShape::baseline_fnn_40pct(), 25);
        let u = estimate_pipeline(&spec).utilization(&FpgaDevice::XCZU7EV);
        assert!(u.lut_pct > 250.0, "LUT {:.0} %", u.lut_pct);
    }

    #[test]
    fn latency_gap_is_orders_of_magnitude() {
        // Paper Table 4: 8–21 cycles vs 924–4023 cycles.
        let fast = estimate_pipeline(&PipelineSpec::herqules(5, true, 4)).latency_cycles;
        let slow = estimate_pipeline(&PipelineSpec::baseline(NetworkShape::baseline_fnn(), 1000))
            .latency_cycles;
        assert!(fast < 100, "herqules latency {fast}");
        assert!(slow > 1000, "baseline latency {slow}");
        assert!(slow / fast > 20);
    }

    #[test]
    fn latency_grows_with_reuse_factor() {
        let l4 = estimate_pipeline(&PipelineSpec::herqules(5, true, 4)).latency_cycles;
        let l64 = estimate_pipeline(&PipelineSpec::herqules(5, true, 64)).latency_cycles;
        assert!(l64 > l4);
    }

    #[test]
    fn luts_shrink_with_reuse_factor_for_big_nets() {
        let lo = estimate_pipeline(&PipelineSpec::baseline(NetworkShape::baseline_fnn(), 200));
        let hi = estimate_pipeline(&PipelineSpec::baseline(NetworkShape::baseline_fnn(), 1000));
        assert!(hi.luts < lo.luts);
    }

    #[test]
    fn bigger_device_can_fit_what_smaller_cannot() {
        let spec = PipelineSpec::baseline(NetworkShape::baseline_fnn_40pct(), 200);
        let est = estimate_pipeline_with(&spec, &CostModel::default(), &FpgaDevice::XCVU9P);
        let small = est.utilization(&FpgaDevice::XCZU7EV);
        let big = est.utilization(&FpgaDevice::XCVU9P);
        assert!(big.lut_pct < small.lut_pct);
    }

    #[test]
    fn fifty_qubits_of_herqules_fit_one_rfsoc() {
        // Paper §7.3: assuming 80 % of resources available, one RFSoC-class
        // device can read out >50 qubits. Ten 5-qubit groups at a moderate
        // reuse factor share the fixed infrastructure once.
        let model = CostModel::default();
        let one_group = estimate_pipeline(&PipelineSpec::herqules(5, true, 64));
        let per_group = one_group.luts - model.lut_fixed_pipeline;
        let lut_ten = 10 * per_group + model.lut_fixed_pipeline;
        assert!(
            (lut_ten as f64) < 0.8 * FpgaDevice::XCZU7EV.luts as f64,
            "ten groups need {lut_ten} LUTs"
        );
        let dsp_ten = 10 * one_group.dsps;
        assert!(
            dsp_ten < FpgaDevice::XCZU7EV.dsps,
            "ten groups need {dsp_ten} DSPs"
        );
    }

    #[test]
    fn precision_scales_multiplier_and_memory_cost() {
        use crate::pipeline::ArithFormat;
        // Reuse factor 64 keeps every engine DSP-mapped for all three
        // formats (the budget never saturates), so the per-engine slice
        // counts are directly visible.
        let base = PipelineSpec::herqules(5, true, 64);
        let fixed = estimate_pipeline(&base.clone().with_format(ArithFormat::Fixed(16)));
        let f32e = estimate_pipeline(&base.clone().with_format(ArithFormat::Float32));
        let f64e = estimate_pipeline(&base.clone().with_format(ArithFormat::Float64));
        // Multipliers: a DSP-mapped fp32 engine tiles ~3 slices, fp64 ~10.
        assert!(fixed.dsps < f32e.dsps, "{} vs {}", fixed.dsps, f32e.dsps);
        assert!(f32e.dsps < f64e.dsps, "{} vs {}", f32e.dsps, f64e.dsps);
        // Weight memory: 16 < 32 < 64 bits per parameter.
        assert!(fixed.brams <= f32e.brams && f32e.brams <= f64e.brams);
        assert!(
            f64e.brams >= 2 * fixed.brams.max(1),
            "f64 weights must cost at least 2x the 16-bit BRAM: {} vs {}",
            f64e.brams,
            fixed.brams
        );
        // Float engines pay normalization fabric on top.
        assert!(fixed.luts < f32e.luts && f32e.luts < f64e.luts);
        // The paper's point survives precision accounting: the fixed-point
        // HERQULES pipeline fits with room to spare, and even its fp64
        // variant is a small design next to the baseline FNN.
        assert!(fixed.utilization(&FpgaDevice::XCZU7EV).fits());
        assert!(f32e.utilization(&FpgaDevice::XCZU7EV).fits());
    }

    #[test]
    fn fabric_spill_is_pricier_for_float_formats() {
        use crate::pipeline::ArithFormat;
        // A reuse factor of 1 on the baseline exhausts the DSP budget and
        // forces fabric multipliers, where the float formats' width factor
        // dominates.
        let spec = PipelineSpec::baseline(NetworkShape::baseline_fnn(), 1);
        let fixed = estimate_pipeline(&spec.clone().with_format(ArithFormat::Fixed(16)));
        let f32e = estimate_pipeline(&spec.clone().with_format(ArithFormat::Float32));
        assert!(
            f32e.luts > fixed.luts + (fixed.luts / 2),
            "float fabric multipliers must dominate: {} vs {}",
            f32e.luts,
            fixed.luts
        );
    }

    #[test]
    fn utilization_percentages_are_consistent() {
        let est = ResourceEstimate {
            luts: 23_040,
            ffs: 4_608,
            dsps: 172,
            brams: 31,
            latency_cycles: 1,
        };
        let u = est.utilization(&FpgaDevice::XCZU7EV);
        assert!((u.lut_pct - 10.0).abs() < 1e-9);
        assert!((u.ff_pct - 1.0).abs() < 1e-9);
        assert!(u.fits());
    }
}
