//! Multi-group scaling study (paper §8, Discussion).
//!
//! Scaling HERQULES beyond one multiplexed group can go two ways:
//!
//! 1. **Independent FNNs** — one HERQULES pipeline per 5-qubit group,
//!    sharing only fixed infrastructure. Resources grow linearly; the
//!    output width stays `2^5` per group.
//! 2. **One shared FNN** across all `N` qubits — potentially more accurate
//!    (it sees cross-group correlations), but its softmax output layer has
//!    `2^N` neurons, which is exponential in the qubit count and dominates
//!    all other costs almost immediately. This is the paper's argument for
//!    partitioning a shared network between hardware and the RFSoC's CPU.

use crate::device::FpgaDevice;
use crate::estimate::{estimate_pipeline_with, CostModel, ResourceEstimate};
use crate::network::NetworkShape;
use crate::pipeline::PipelineSpec;

/// Resource estimate for `k` independent five-qubit HERQULES groups on one
/// device (fixed infrastructure counted once).
pub fn independent_groups(k: usize, reuse_factor: usize, device: &FpgaDevice) -> ResourceEstimate {
    assert!(k > 0, "need at least one group");
    let model = CostModel::default();
    let one = estimate_pipeline_with(
        &PipelineSpec::herqules(5, true, reuse_factor),
        &model,
        device,
    );
    let per_group_luts = one.luts - model.lut_fixed_pipeline;
    ResourceEstimate {
        luts: k as u64 * per_group_luts + model.lut_fixed_pipeline,
        ffs: (k as u64 * per_group_luts + model.lut_fixed_pipeline) as f64 as u64 * 45 / 100,
        dsps: k as u64 * one.dsps,
        brams: k as u64 * one.brams,
        latency_cycles: one.latency_cycles,
    }
}

/// The output-layer width a *shared* FNN over `n_qubits` needs (`2^n`).
///
/// Returns `None` when the width overflows `u64` — i.e. it stopped being a
/// hardware question long before.
pub fn shared_fnn_output_width(n_qubits: usize) -> Option<u64> {
    if n_qubits >= 64 {
        None
    } else {
        Some(1u64 << n_qubits)
    }
}

/// The shared-FNN network shape for `n_qubits` with RMFs (input `2n`,
/// paper-proportioned hidden layers, `2^n` outputs).
///
/// # Panics
///
/// Panics if `n_qubits` is 0 or ≥ 26 (the shape itself becomes absurd).
pub fn shared_fnn_shape(n_qubits: usize) -> NetworkShape {
    assert!(
        n_qubits > 0 && n_qubits < 26,
        "shared FNN shape out of sane range"
    );
    let f = 2 * n_qubits;
    NetworkShape::from_sizes(&[f, 2 * f, 4 * f, 2 * f, 1 << n_qubits])
}

/// Maximum number of five-qubit groups (50-qubit increments of readout) that
/// fit in the given fraction of a device with independent FNNs.
pub fn max_groups(device: &FpgaDevice, reuse_factor: usize, budget_frac: f64) -> usize {
    let mut k = 1;
    loop {
        let est = independent_groups(k + 1, reuse_factor, device);
        let lut_ok = (est.luts as f64) < budget_frac * device.luts as f64;
        let dsp_ok = (est.dsps as f64) < budget_frac * device.dsps as f64;
        let bram_ok = (est.brams as f64) < budget_frac * device.brams as f64;
        if lut_ok && dsp_ok && bram_ok {
            k += 1;
        } else {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_groups_scale_linearly_minus_fixed() {
        let d = FpgaDevice::XCZU7EV;
        let one = independent_groups(1, 64, &d);
        let four = independent_groups(4, 64, &d);
        // Four groups cost less than 4× one group (shared infrastructure).
        assert!(four.luts < 4 * one.luts);
        assert!(four.luts > 3 * (one.luts - CostModel::default().lut_fixed_pipeline));
        assert_eq!(four.dsps, 4 * one.dsps);
    }

    #[test]
    fn ten_groups_fit_an_rfsoc_at_moderate_reuse() {
        // The paper's ">50 qubits per RFSoC" claim (§7.3) with 80 % budget.
        let k = max_groups(&FpgaDevice::XCZU7EV, 64, 0.8);
        assert!(k >= 10, "only {k} groups fit");
    }

    #[test]
    fn shared_fnn_output_explodes_exponentially() {
        assert_eq!(shared_fnn_output_width(5), Some(32));
        assert_eq!(shared_fnn_output_width(10), Some(1024));
        assert_eq!(shared_fnn_output_width(50), Some(1u64 << 50));
        assert_eq!(shared_fnn_output_width(64), None);
        // Already at 20 qubits the shared output layer alone dwarfs the
        // entire per-group design.
        let shared = shared_fnn_shape(20);
        let independent = shared_fnn_shape(5);
        assert!(shared.n_macs() > 100 * 4 * independent.n_macs());
    }

    #[test]
    fn shared_fnn_shape_follows_paper_proportions() {
        let s = shared_fnn_shape(5);
        assert_eq!(s.sizes(), &[10, 20, 40, 20, 32]);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_panics() {
        let _ = independent_groups(0, 4, &FpgaDevice::XCZU7EV);
    }
}
