//! FPGA device resource inventories.

/// Resource inventory of an FPGA / MPSoC fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaDevice {
    /// Marketing/device name.
    pub name: &'static str,
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP slices.
    pub dsps: u64,
    /// Block RAMs (36 kb each).
    pub brams: u64,
}

impl FpgaDevice {
    /// Xilinx Zynq UltraScale+ MPSoC `xczu7ev-ffvc1156-2-i` — the paper's
    /// target, representative of RFSoC-class control hardware (QICK).
    pub const XCZU7EV: FpgaDevice = FpgaDevice {
        name: "xczu7ev",
        luts: 230_400,
        ffs: 460_800,
        dsps: 1_728,
        brams: 312,
    };

    /// Xilinx Virtex UltraScale+ `xcvu9p` — the "larger fabric" the paper
    /// mentions as the expensive alternative (§7.3).
    pub const XCVU9P: FpgaDevice = FpgaDevice {
        name: "xcvu9p",
        luts: 1_182_240,
        ffs: 2_364_480,
        dsps: 6_840,
        brams: 2_160,
    };

    /// Total BRAM capacity in bits (36 kb per block).
    pub fn bram_bits(&self) -> u64 {
        self.brams * 36 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xczu7ev_matches_datasheet() {
        let d = FpgaDevice::XCZU7EV;
        assert_eq!(d.luts, 230_400);
        assert_eq!(d.dsps, 1_728);
        assert_eq!(d.brams, 312);
        assert_eq!(d.ffs, 2 * d.luts);
    }

    #[test]
    fn vu9p_is_larger_everywhere() {
        let a = FpgaDevice::XCZU7EV;
        let b = FpgaDevice::XCVU9P;
        assert!(b.luts > a.luts && b.ffs > a.ffs && b.dsps > a.dsps && b.brams > a.brams);
    }

    #[test]
    fn bram_capacity_in_bits() {
        assert_eq!(FpgaDevice::XCZU7EV.bram_bits(), 312 * 36 * 1024);
    }
}
