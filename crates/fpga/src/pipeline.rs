//! Specification of a complete readout datapath to estimate.

use crate::network::NetworkShape;

/// What sits on the FPGA for one frequency-multiplexed readout group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Number of multiplexed qubits handled by this pipeline.
    pub n_qubits: usize,
    /// Per-qubit digital downconversion (demodulation) blocks. The baseline
    /// design has none — it ships raw samples to software.
    pub has_demodulation: bool,
    /// Matched filters per qubit (0 for the baseline, 1 for `mf-nn`, 2 for
    /// `mf-rmf-nn` counting the RMF).
    pub filters_per_qubit: usize,
    /// The neural-network head (or the full baseline FNN).
    pub network: NetworkShape,
    /// Fixed-point word width of the datapath, in bits.
    pub precision_bits: u32,
    /// hls4ml-style reuse factor: logical multiplications per physical
    /// multiplier.
    pub reuse_factor: usize,
    /// Raw samples that must be buffered ahead of the network. Zero for
    /// HERQULES (filters stream over samples as they arrive); `2 × samples`
    /// for the baseline, which needs the whole trace before layer 1.
    pub buffered_inputs: usize,
}

impl PipelineSpec {
    /// The HERQULES pipeline for `n` qubits (`mf-nn` without RMF, `mf-rmf-nn`
    /// with), at 16-bit precision.
    ///
    /// # Panics
    ///
    /// Panics if `reuse_factor == 0` or `n_qubits == 0`.
    pub fn herqules(n_qubits: usize, with_rmf: bool, reuse_factor: usize) -> Self {
        assert!(n_qubits > 0, "need at least one qubit");
        assert!(reuse_factor > 0, "reuse factor must be positive");
        PipelineSpec {
            n_qubits,
            has_demodulation: true,
            filters_per_qubit: if with_rmf { 2 } else { 1 },
            network: NetworkShape::herqules_head(n_qubits, with_rmf),
            precision_bits: 16,
            reuse_factor,
            buffered_inputs: 0,
        }
    }

    /// A hypothetical on-FPGA implementation of the baseline FNN for an
    /// `n_samples`-long readout window (what Fig. 4(c)/Table 4 cost out).
    ///
    /// # Panics
    ///
    /// Panics if `reuse_factor == 0`.
    pub fn baseline(network: NetworkShape, reuse_factor: usize) -> Self {
        assert!(reuse_factor > 0, "reuse factor must be positive");
        let buffered_inputs = network.input_size();
        PipelineSpec {
            n_qubits: 5,
            has_demodulation: false,
            filters_per_qubit: 0,
            network,
            precision_bits: 16,
            reuse_factor,
            buffered_inputs,
        }
    }

    /// Total matched-filter MAC engines in the frontend (two per filter: one
    /// per quadrature channel).
    pub fn filter_macs(&self) -> usize {
        2 * self.filters_per_qubit * self.n_qubits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn herqules_spec_shape() {
        let spec = PipelineSpec::herqules(5, true, 4);
        assert_eq!(spec.network.sizes(), &[10, 20, 40, 20, 32]);
        assert_eq!(spec.filter_macs(), 20);
        assert!(spec.has_demodulation);
        assert_eq!(spec.buffered_inputs, 0);
    }

    #[test]
    fn baseline_spec_buffers_whole_trace() {
        let spec = PipelineSpec::baseline(NetworkShape::baseline_fnn(), 200);
        assert_eq!(spec.buffered_inputs, 1000);
        assert_eq!(spec.filter_macs(), 0);
        assert!(!spec.has_demodulation);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_reuse_factor_panics() {
        let _ = PipelineSpec::herqules(5, true, 0);
    }
}
