//! Specification of a complete readout datapath to estimate.

use crate::network::NetworkShape;

/// Arithmetic format of a datapath — what the precision-generic software
/// pipeline (`Real = f32`/`f64`) or the quantized path (`nn::quant`) maps to
/// in hardware.
///
/// The format drives two costs in the estimator: multiplier width (DSP
/// slices and support fabric per MAC engine) and weight-storage width
/// (BRAM/LUT-RAM bits per parameter). The per-engine numbers follow typical
/// UltraScale+ synthesis results: one DSP48E2 carries a 16-bit fixed
/// multiply outright, a pipelined `fp32` mult/add core maps to ~3 DSPs plus
/// alignment fabric, and `fp64` to ~10 DSPs plus several hundred LUTs of
/// normalization logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithFormat {
    /// Two's-complement fixed point of the given total width (the paper's
    /// datapath; 16 bits in all its evaluations).
    Fixed(u32),
    /// IEEE-754 single precision — the hardware analogue of the software
    /// pipeline's `f32` instantiation.
    Float32,
    /// IEEE-754 double precision — the `f64` reference pipeline; priced out
    /// to show why nobody builds it.
    Float64,
}

impl ArithFormat {
    /// Storage width of one weight, in bits.
    pub fn bits(self) -> u32 {
        match self {
            ArithFormat::Fixed(w) => w,
            ArithFormat::Float32 => 32,
            ArithFormat::Float64 => 64,
        }
    }

    /// DSP slices per MAC engine.
    pub fn dsps_per_mult(self) -> u64 {
        match self {
            // One DSP covers fixed multiplies up to 18×27; wider fixed
            // words tile additional slices.
            ArithFormat::Fixed(w) if w <= 18 => 1,
            ArithFormat::Fixed(_) => 2,
            ArithFormat::Float32 => 3,
            ArithFormat::Float64 => 10,
        }
    }

    /// Multiplier-width factor applied to the fabric cost of a non-DSP
    /// engine (relative to a 16-bit fixed multiplier).
    pub fn fabric_mult_factor(self) -> u64 {
        match self {
            ArithFormat::Fixed(w) => u64::from(w.div_ceil(16).max(1)),
            ArithFormat::Float32 => 4,
            ArithFormat::Float64 => 16,
        }
    }

    /// Fixed LUT overhead per floating-point engine (exponent alignment,
    /// normalization, rounding); zero for fixed point.
    pub fn lut_per_float_engine(self) -> u64 {
        match self {
            ArithFormat::Fixed(_) => 0,
            ArithFormat::Float32 => 150,
            ArithFormat::Float64 => 500,
        }
    }
}

/// What sits on the FPGA for one frequency-multiplexed readout group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Number of multiplexed qubits handled by this pipeline.
    pub n_qubits: usize,
    /// Per-qubit digital downconversion (demodulation) blocks. The baseline
    /// design has none — it ships raw samples to software.
    pub has_demodulation: bool,
    /// Matched filters per qubit (0 for the baseline, 1 for `mf-nn`, 2 for
    /// `mf-rmf-nn` counting the RMF).
    pub filters_per_qubit: usize,
    /// The neural-network head (or the full baseline FNN).
    pub network: NetworkShape,
    /// Arithmetic format of the datapath (multiplier + weight-storage cost).
    pub format: ArithFormat,
    /// hls4ml-style reuse factor: logical multiplications per physical
    /// multiplier.
    pub reuse_factor: usize,
    /// Raw samples that must be buffered ahead of the network. Zero for
    /// HERQULES (filters stream over samples as they arrive); `2 × samples`
    /// for the baseline, which needs the whole trace before layer 1.
    pub buffered_inputs: usize,
}

impl PipelineSpec {
    /// The HERQULES pipeline for `n` qubits (`mf-nn` without RMF, `mf-rmf-nn`
    /// with), at 16-bit precision.
    ///
    /// # Panics
    ///
    /// Panics if `reuse_factor == 0` or `n_qubits == 0`.
    pub fn herqules(n_qubits: usize, with_rmf: bool, reuse_factor: usize) -> Self {
        assert!(n_qubits > 0, "need at least one qubit");
        assert!(reuse_factor > 0, "reuse factor must be positive");
        PipelineSpec {
            n_qubits,
            has_demodulation: true,
            filters_per_qubit: if with_rmf { 2 } else { 1 },
            network: NetworkShape::herqules_head(n_qubits, with_rmf),
            format: ArithFormat::Fixed(16),
            reuse_factor,
            buffered_inputs: 0,
        }
    }

    /// A hypothetical on-FPGA implementation of the baseline FNN for an
    /// `n_samples`-long readout window (what Fig. 4(c)/Table 4 cost out).
    ///
    /// # Panics
    ///
    /// Panics if `reuse_factor == 0`.
    pub fn baseline(network: NetworkShape, reuse_factor: usize) -> Self {
        assert!(reuse_factor > 0, "reuse factor must be positive");
        let buffered_inputs = network.input_size();
        PipelineSpec {
            n_qubits: 5,
            has_demodulation: false,
            filters_per_qubit: 0,
            network,
            format: ArithFormat::Fixed(16),
            reuse_factor,
            buffered_inputs,
        }
    }

    /// Total matched-filter MAC engines in the frontend (two per filter: one
    /// per quadrature channel).
    pub fn filter_macs(&self) -> usize {
        2 * self.filters_per_qubit * self.n_qubits
    }

    /// The same pipeline at another arithmetic format.
    pub fn with_format(mut self, format: ArithFormat) -> Self {
        self.format = format;
        self
    }

    /// Storage width of one weight, in bits.
    pub fn precision_bits(&self) -> u32 {
        self.format.bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn herqules_spec_shape() {
        let spec = PipelineSpec::herqules(5, true, 4);
        assert_eq!(spec.network.sizes(), &[10, 20, 40, 20, 32]);
        assert_eq!(spec.filter_macs(), 20);
        assert!(spec.has_demodulation);
        assert_eq!(spec.buffered_inputs, 0);
        assert_eq!(spec.format, ArithFormat::Fixed(16));
        assert_eq!(spec.precision_bits(), 16);
    }

    #[test]
    fn format_costs_are_ordered() {
        let formats = [
            ArithFormat::Fixed(16),
            ArithFormat::Float32,
            ArithFormat::Float64,
        ];
        for w in formats.windows(2) {
            assert!(w[0].bits() <= w[1].bits());
            assert!(w[0].dsps_per_mult() < w[1].dsps_per_mult());
            assert!(w[0].fabric_mult_factor() <= w[1].fabric_mult_factor());
        }
        assert_eq!(ArithFormat::Fixed(24).dsps_per_mult(), 2);
        assert_eq!(
            PipelineSpec::herqules(5, true, 4)
                .with_format(ArithFormat::Float32)
                .precision_bits(),
            32
        );
    }

    #[test]
    fn baseline_spec_buffers_whole_trace() {
        let spec = PipelineSpec::baseline(NetworkShape::baseline_fnn(), 200);
        assert_eq!(spec.buffered_inputs, 1000);
        assert_eq!(spec.filter_macs(), 0);
        assert!(!spec.has_demodulation);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_reuse_factor_panics() {
        let _ = PipelineSpec::herqules(5, true, 0);
    }
}
