//! Dense-network shape descriptions (decoupled from the training crate).

/// The shape of a dense feed-forward network: layer widths, input first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkShape {
    sizes: Vec<usize>,
}

impl NetworkShape {
    /// Builds a shape from layer widths, e.g. `[1000, 500, 250, 32]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn from_sizes(sizes: &[usize]) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output widths");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "layer widths must be positive"
        );
        NetworkShape {
            sizes: sizes.to_vec(),
        }
    }

    /// The paper's baseline FNN (1000-500-250-32).
    pub fn baseline_fnn() -> Self {
        Self::from_sizes(&[1000, 500, 250, 32])
    }

    /// The 40 %-scale baseline of Fig. 4(c) (400-200-100-32) — the largest
    /// network Vivado HLS managed to synthesize.
    pub fn baseline_fnn_40pct() -> Self {
        Self::from_sizes(&[400, 200, 100, 32])
    }

    /// The HERQULES head for `n` qubits: `F → 2F → 4F → 2F → 2^n` where `F`
    /// is `n` (without RMF) or `2n` (with RMF).
    pub fn herqules_head(n_qubits: usize, with_rmf: bool) -> Self {
        let f = if with_rmf { 2 * n_qubits } else { n_qubits };
        // Hidden widths floored at 8 units, mirroring the trained head in
        // `herqles-core` (identical at paper scale, f >= 4).
        let hidden = |k: usize| (k * f).max(8);
        Self::from_sizes(&[f, hidden(2), hidden(4), hidden(2), 1 << n_qubits])
    }

    /// Layer widths, input first.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of dense layers.
    pub fn n_layers(&self) -> usize {
        self.sizes.len() - 1
    }

    /// Per-layer `(fan_in, fan_out)` pairs.
    pub fn layers(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.sizes.windows(2).map(|w| (w[0], w[1]))
    }

    /// Total multiply-accumulates per inference.
    pub fn n_macs(&self) -> usize {
        self.layers().map(|(i, o)| i * o).sum()
    }

    /// Total trainable parameters (weights + biases).
    pub fn n_parameters(&self) -> usize {
        self.layers().map(|(i, o)| i * o + o).sum()
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.sizes[0]
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        *self.sizes.last().expect("at least two widths")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_macs_match_hand_count() {
        let n = NetworkShape::baseline_fnn();
        assert_eq!(n.n_macs(), 1000 * 500 + 500 * 250 + 250 * 32);
        assert_eq!(n.n_parameters(), n.n_macs() + 500 + 250 + 32);
        assert_eq!(n.n_layers(), 3);
    }

    #[test]
    fn herqules_head_shapes() {
        assert_eq!(
            NetworkShape::herqules_head(5, true).sizes(),
            &[10, 20, 40, 20, 32]
        );
        assert_eq!(
            NetworkShape::herqules_head(5, false).sizes(),
            &[5, 10, 20, 10, 32]
        );
    }

    #[test]
    fn herqules_is_orders_of_magnitude_smaller() {
        let big = NetworkShape::baseline_fnn().n_macs();
        let small = NetworkShape::herqules_head(5, true).n_macs();
        assert!(big > 200 * small, "big {big} vs small {small}");
    }

    #[test]
    fn forty_pct_baseline_still_large() {
        assert_eq!(NetworkShape::baseline_fnn_40pct().n_macs(), 103_200);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = NetworkShape::from_sizes(&[10, 0, 2]);
    }
}
