//! Quickstart: generate a readout dataset, train the HERQULES discriminator,
//! and measure its accuracy.
//!
//! Run with `cargo run --release --example quickstart`.

use herqles::core::designs::DesignKind;
use herqles::core::metrics::evaluate;
use herqles::core::trainer::ReadoutTrainer;
use herqles::sim::{ChipConfig, Dataset};

fn main() {
    // 1. A five-qubit frequency-multiplexed chip (the paper's setup shape:
    //    500 MS/s ADC, 1 µs readout, one poorly separated qubit).
    let config = ChipConfig::five_qubit_default();

    // 2. Synthesize labeled calibration shots for all 32 basis states.
    println!("generating dataset…");
    let dataset = Dataset::generate(&config, 200, 42);
    let split = dataset.split(0.3, 0.0, 7);

    // 3. Train the flagship mf-rmf-nn design: matched filters + relaxation
    //    matched filters + a small neural network.
    println!("training mf-rmf-nn on {} shots…", split.train.len());
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
    let herqules = trainer.train(DesignKind::MfRmfNn);

    // 4. Evaluate single-shot assignment fidelity on held-out shots.
    let result = evaluate(herqules.as_ref(), &dataset, &split.test);
    println!("\nper-qubit accuracy:");
    for (q, acc) in result.per_qubit_accuracy().iter().enumerate() {
        println!("  qubit {}: {:.3}", q + 1, acc);
    }
    println!(
        "cumulative accuracy (F5Q): {:.3}",
        result.cumulative_accuracy()
    );

    // 5. Discriminate a single fresh shot, as the FPGA would.
    let shot = &dataset.shots[split.test[0]];
    let state = herqules.discriminate(&shot.raw);
    println!(
        "\nshot prepared as {} read out as {}",
        shot.prepared.to_bit_string(5),
        state.to_bit_string(5)
    );
}
