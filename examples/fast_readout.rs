//! Fast readout without retraining (paper §5): train once on the full 1 µs
//! window, then discriminate progressively shorter traces, including
//! per-qubit asymmetric durations for mid-circuit-measurement scheduling.
//!
//! Run with `cargo run --release --example fast_readout`.

use herqles::core::designs::DesignKind;
use herqles::core::duration::{
    evaluate_truncated, evaluate_truncated_per_qubit, shortest_saturating_duration,
};
use herqles::core::trainer::ReadoutTrainer;
use herqles::sim::{ChipConfig, Dataset};

fn main() {
    let config = ChipConfig::five_qubit_default();
    println!("generating dataset…");
    let dataset = Dataset::generate(&config, 200, 9);
    let split = dataset.split(0.3, 0.0, 3);
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
    println!("training mf-rmf-nn once, on the full window…");
    let disc = trainer.train(DesignKind::MfRmfNn);

    // Uniform duration sweep: no retraining anywhere.
    let bin_ns = config.demod_bin_s * 1e9;
    println!("\nduration sweep (train once, evaluate truncated):");
    for bins in [20usize, 16, 12, 8, 4] {
        let result = evaluate_truncated(disc.as_ref(), &dataset, &split.test, bins)
            .expect("filter designs support truncation");
        println!(
            "  {:>4.0} ns: F5Q = {:.3}",
            bins as f64 * bin_ns,
            result.cumulative_accuracy()
        );
    }

    // The paper's §5.2 search: shortest duration whose accuracy saturates.
    let point = shortest_saturating_duration(disc.as_ref(), &dataset, &split.test, 0.01);
    println!(
        "\nshortest saturating duration: {:.0} ns (F5Q {:.3})",
        point.duration_s * 1e9,
        point.result.cumulative_accuracy()
    );

    // Asymmetric budgets: read the ancilla-like fastest qubit (qubit 5) at
    // half duration, keep the rest at full length.
    let budgets = vec![20, 20, 20, 20, 10];
    let result = evaluate_truncated_per_qubit(disc.as_ref(), &dataset, &split.test, &budgets)
        .expect("filter designs support truncation");
    println!(
        "asymmetric (qubit 5 at 500 ns): per-qubit {:?} F5Q {:.3}",
        result
            .per_qubit_accuracy()
            .iter()
            .map(|a| format!("{a:.3}"))
            .collect::<Vec<_>>(),
        result.cumulative_accuracy()
    );
}
