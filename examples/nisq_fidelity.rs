//! NISQ application impact (paper §7.1): better single-shot readout directly
//! lifts benchmark fidelity. Compares Bernstein–Vazirani and GHZ fidelity
//! under baseline-level vs HERQULES-level readout error.
//!
//! Run with `cargo run --release --example nisq_fidelity`.

use herqles::nisq::benchmarks::{alternating_secret, bernstein_vazirani, ghz};
use herqles::nisq::fidelity::{success_probability, tvd_fidelity};
use herqles::nisq::sim::{counts_to_distribution, run_ideal, run_noisy};
use herqles::nisq::NoiseModel;

fn main() {
    let err_baseline = 1.0 - 0.9122; // baseline cumulative accuracy
    let err_herqules = 1.0 - 0.9266; // HERQULES cumulative accuracy

    println!("Bernstein–Vazirani success probability (IBM-Hanoi-like gates):");
    for n in [5usize, 10, 15] {
        let secret = alternating_secret(n);
        let circuit = bernstein_vazirani(n, secret);
        let success = |err: f64, seed: u64| {
            let counts = run_noisy(&circuit, &NoiseModel::ibm_hanoi_like(err), 1500, seed);
            success_probability(&counts, secret)
        };
        let base = success(err_baseline, 3);
        let herq = success(err_herqules, 4);
        println!(
            "  bv-{n:<2}: baseline {base:.3}  herqules {herq:.3}  normalized {:.3}",
            herq / base
        );
    }

    println!("\nGHZ TVD fidelity:");
    for n in [5usize, 10] {
        let circuit = ghz(n);
        let ideal = run_ideal(&circuit).probabilities();
        let fid = |err: f64, seed: u64| {
            let counts = run_noisy(&circuit, &NoiseModel::ibm_hanoi_like(err), 1500, seed);
            tvd_fidelity(&ideal, &counts_to_distribution(&counts, n))
        };
        let base = fid(err_baseline, 5);
        let herq = fid(err_herqules, 6);
        println!(
            "  ghz-{n:<2}: baseline {base:.3}  herqules {herq:.3}  normalized {:.3}",
            herq / base
        );
    }
}
