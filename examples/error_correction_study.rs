//! Readout error and the surface code (paper §7.3): how the readout error
//! rate εR moves the logical error rate of a distance-7 code, and how a 25 %
//! faster readout compresses the syndrome cycle.
//!
//! Run with `cargo run --release --example error_correction_study`.

use herqles::qec::{estimate_logical_error_rate, CycleTimes, GateSet, LogicalErrorConfig};

fn main() {
    println!("distance-7 surface code, 7 rounds, logical error rate per round:");
    let physical = 4e-3;
    for readout_error in [0.0, 0.005, 0.01, 0.02] {
        let cfg = LogicalErrorConfig {
            distance: 7,
            rounds: 7,
            data_error_prob: physical,
            meas_error_prob: readout_error,
            blocks: 20_000,
            seed: 1,
        };
        let rate = estimate_logical_error_rate(&cfg);
        println!("  eR = {:>5.1} %: {rate:.2e}", 100.0 * readout_error);
    }

    println!("\ndistance scaling at p = 4e-3, eR = 1 %:");
    for distance in [3usize, 5, 7] {
        let cfg = LogicalErrorConfig {
            distance,
            rounds: distance,
            data_error_prob: physical,
            meas_error_prob: 0.01,
            blocks: 20_000,
            seed: 2,
        };
        println!(
            "  d = {distance}: {:.2e}",
            estimate_logical_error_rate(&cfg)
        );
    }

    println!("\nsyndrome cycle with 25 % shorter readout:");
    for gates in [GateSet::GOOGLE, GateSet::IBM] {
        println!(
            "  {:>6}: {:.0} ns -> normalized {:.3}",
            gates.name,
            CycleTimes::SURFACE17.duration_ns(&gates),
            CycleTimes::SURFACE17.normalized_duration(&gates, 0.75)
        );
    }
}
