//! End-to-end streaming QEC cycles: multiplexed ancilla readout synthesized,
//! discriminated, and decoded on one batch pipeline with per-stage timing —
//! serially, then on a `ShardPool` with the two-stage synthesis pipeline
//! (bit-identical results at any worker count). Every engine's flight
//! recorder is drained into `qec_stream.trace.json` (open it in Perfetto or
//! `chrome://tracing`), and a drifted run at the end drives the demo SLO
//! alert set through its fire → clear lifecycle.
//!
//! Run with `cargo run --release --example qec_stream`.

use std::sync::Arc;

use herqles::exec::PoolTelemetry;
use herqles::qec::RotatedSurfaceCode;
use herqles::sim::{ChipConfig, DriftEvent, FaultPlan};
use herqles::stream::{
    demo_alert_rules, train_mf_discriminator, train_mf_discriminator_typed, AdaptiveMf,
    CycleConfig, CycleEngine, EngineTelemetry, HealthConfig, RecalConfig, ShardPool,
};
use herqles::telemetry::{AlertEngine, ChromeTrace, Registry};

fn main() {
    let chip = ChipConfig::five_qubit_default();
    println!("training the mf discriminator on a synthetic calibration set…");
    let disc = train_mf_discriminator(&chip, 12, 7);

    // The flight recorder: every engine in this example drains its spans
    // into one Chrome trace, one process per engine.
    let mut trace = ChromeTrace::new();
    let mut next_pid = 0u32;
    let mut alloc_pid = move |trace: &mut ChromeTrace, name: &str| {
        next_pid += 1;
        trace.set_process_name(next_pid, name);
        trace.set_thread_name(next_pid, 0, "engine");
        next_pid
    };

    for distance in [3usize, 5] {
        let code = RotatedSurfaceCode::new(distance);
        let cfg = CycleConfig {
            rounds: distance,
            data_error_prob: 4e-3,
            seed: 1,
        };
        let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        println!(
            "\ndistance {distance}: {} ancillas on {} feedline groups of {} channels",
            code.n_stabilizers(),
            engine.ancilla_map().n_groups(),
            chip.n_qubits(),
        );

        // Pull-based streaming: each item is one decoded cycle.
        for (i, result) in engine.cycles().take(10).enumerate() {
            let s = result.stats.stage;
            println!(
                "  cycle {i}: {:>2} events, logical_error={:<5} | synth {:>9} ns, \
                 discriminate {:>8} ns, syndrome {:>6} ns, decode {:>6} ns",
                result.stats.n_events,
                result.outcome.logical_error,
                s.synth,
                s.discriminate,
                s.syndrome,
                s.decode,
            );
        }

        let totals = engine.stats();
        let per_cycle_ns = totals.stage.total() / totals.cycles.max(1);
        println!(
            "  ⇒ {} cycles, {} rounds, {} logical errors, ≈{:.2} µs/cycle on the pipeline",
            totals.cycles,
            totals.rounds,
            totals.logical_errors,
            per_cycle_ns as f64 / 1e3,
        );

        // The same cycles on a worker pool: each feedline group synthesizes
        // on its own shard while the previous round discriminates — and the
        // outcomes are bit-identical to the serial engine's. Per-worker
        // instrumentation rides along for the flight recorder.
        let pool = ShardPool::new(4);
        let workers = Arc::new(PoolTelemetry::new(pool.threads()));
        pool.set_telemetry(Some(Arc::clone(&workers)));
        let mut parallel = CycleEngine::with_pool(cfg, &chip, &code, disc.as_ref(), &pool);
        let serial_errors = totals.logical_errors;
        let pooled: u64 = parallel
            .cycles()
            .take(10)
            .map(|r| u64::from(r.outcome.logical_error))
            .sum();
        pool.set_telemetry(None);
        println!(
            "  ⇒ pooled on {} threads: {} logical errors (serial saw {}) — identical per seed",
            pool.threads(),
            pooled,
            serial_errors,
        );
        assert_eq!(pooled, serial_errors, "pooled run must match serial");

        // The engine's built-in telemetry (always on) has been watching the
        // serial run: per-stage latency percentiles straight from `stats()`.
        println!("\n  telemetry summary (serial engine):");
        for line in engine.stats().summary().lines() {
            println!("    {line}");
        }

        // Drain both engines into the flight recorder: the serial engine's
        // stage track, and the pooled engine's stage track plus one task
        // track per worker (tid 1 + w; worker 0 is the calling thread).
        let pid = alloc_pid(&mut trace, &format!("qec_stream d{distance} serial"));
        trace.add_spans(pid, 0, &engine.telemetry().spans().snapshot());
        trace.add_instants(pid, 0, &engine.telemetry().trace().snapshot());
        let pid = alloc_pid(&mut trace, &format!("qec_stream d{distance} pooled"));
        trace.add_spans(pid, 0, &parallel.telemetry().spans().snapshot());
        for w in 0..workers.workers() {
            trace.set_thread_name(pid, 1 + w as u32, &format!("worker {w}"));
        }
        trace.add_spans(pid, 1, &workers.spans().snapshot());
    }

    // SLO alerting: stream adaptively through an injected centroid drift
    // and evaluate the demo alert set against the engine's registered
    // metrics every cycle — the health monitor detects the drift (alert
    // fires), the hot-swap recalibrates, and quiet cycles clear it again.
    println!("\ndrifted adaptive run with the demo SLO alert set:");
    let chip2 = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let mf = train_mf_discriminator_typed(&chip2, 12, 7);
    let adaptive = AdaptiveMf::from_mf(
        &mf,
        RecalConfig {
            capacity: 128,
            min_windows: 8,
            ..RecalConfig::default()
        },
    );
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.03,
        seed: 20_230_612,
    };
    let registry = Registry::new();
    let scope = registry.scope(&[("engine", "qec-stream-drift")]);
    let mut drifted = CycleEngine::<f64, _>::new(cfg, &chip2, &code, &adaptive);
    drifted.set_health_config(HealthConfig {
        alpha: 0.04,
        baseline_rounds: 60,
        hold_rounds: 4,
        degraded_defect_factor: 3.0,
        critical_defect_factor: 8.0,
        ..HealthConfig::default()
    });
    drifted.set_recal_cooldown(12);
    drifted.set_telemetry(EngineTelemetry::registered(&scope));
    let mut alerts = AlertEngine::registered(demo_alert_rules(), &scope);

    // Clean baseline, then step every readout cloud by 0.3 of its
    // ground/excited separation (the drift recipe the stream tests pin).
    let _ = drifted.run_cycles_adaptive(40);
    alerts.evaluate(&registry.snapshot());
    let onset = drifted.stats().rounds;
    let mut plan = FaultPlan::none();
    for (k, q) in chip2.qubits.iter().enumerate() {
        plan.push(DriftEvent::CentroidDrift {
            qubit: k,
            start_round: onset,
            end_round: onset,
            delta: q.separation_dir() * (0.30 * q.separation()),
        });
    }
    drifted.set_fault_plan(plan);
    for _ in 0..60 {
        let _ = drifted.run_cycle_adaptive();
        alerts.evaluate(&registry.snapshot());
    }

    println!(
        "  drift detected and recalibrated: {} hot-swap(s), {} health transition(s)",
        drifted.stats().hot_swaps,
        drifted.stats().health_transitions,
    );
    println!("  after {} evaluations:", alerts.evaluations());
    for s in alerts.statuses() {
        println!(
            "    {:<24} {:<8} fired {} cleared {} (last value {:?})",
            s.name,
            s.state.label(),
            s.fired,
            s.cleared,
            s.last_value,
        );
    }

    // The alert lifecycle lands in the flight recorder too.
    let pid = alloc_pid(&mut trace, "qec_stream drifted");
    trace.add_spans(pid, 0, &drifted.telemetry().spans().snapshot());
    trace.add_instants(pid, 0, &drifted.telemetry().trace().snapshot());
    trace.add_instants(pid, 0, &alerts.trace().snapshot());

    std::fs::write("qec_stream.trace.json", trace.to_json()).expect("write trace");
    println!(
        "\nwrote qec_stream.trace.json ({} events) — open it in Perfetto or chrome://tracing",
        trace.event_count()
    );
}
