//! End-to-end streaming QEC cycles: multiplexed ancilla readout synthesized,
//! discriminated, and decoded on one batch pipeline with per-stage timing —
//! serially, then on a `ShardPool` with the two-stage synthesis pipeline
//! (bit-identical results at any worker count).
//!
//! Run with `cargo run --release --example qec_stream`.

use herqles::qec::RotatedSurfaceCode;
use herqles::sim::ChipConfig;
use herqles::stream::{train_mf_discriminator, CycleConfig, CycleEngine, ShardPool};

fn main() {
    let chip = ChipConfig::five_qubit_default();
    println!("training the mf discriminator on a synthetic calibration set…");
    let disc = train_mf_discriminator(&chip, 12, 7);

    for distance in [3usize, 5] {
        let code = RotatedSurfaceCode::new(distance);
        let cfg = CycleConfig {
            rounds: distance,
            data_error_prob: 4e-3,
            seed: 1,
        };
        let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        println!(
            "\ndistance {distance}: {} ancillas on {} feedline groups of {} channels",
            code.n_stabilizers(),
            engine.ancilla_map().n_groups(),
            chip.n_qubits(),
        );

        // Pull-based streaming: each item is one decoded cycle.
        for (i, result) in engine.cycles().take(10).enumerate() {
            let s = result.stats.stage;
            println!(
                "  cycle {i}: {:>2} events, logical_error={:<5} | synth {:>9} ns, \
                 discriminate {:>8} ns, syndrome {:>6} ns, decode {:>6} ns",
                result.stats.n_events,
                result.outcome.logical_error,
                s.synth,
                s.discriminate,
                s.syndrome,
                s.decode,
            );
        }

        let totals = engine.stats();
        let per_cycle_ns = totals.stage.total() / totals.cycles.max(1);
        println!(
            "  ⇒ {} cycles, {} rounds, {} logical errors, ≈{:.2} µs/cycle on the pipeline",
            totals.cycles,
            totals.rounds,
            totals.logical_errors,
            per_cycle_ns as f64 / 1e3,
        );

        // The same cycles on a worker pool: each feedline group synthesizes
        // on its own shard while the previous round discriminates — and the
        // outcomes are bit-identical to the serial engine's.
        let pool = ShardPool::new(4);
        let mut parallel = CycleEngine::with_pool(cfg, &chip, &code, disc.as_ref(), &pool);
        let serial_errors = totals.logical_errors;
        let pooled: u64 = parallel
            .cycles()
            .take(10)
            .map(|r| u64::from(r.outcome.logical_error))
            .sum();
        println!(
            "  ⇒ pooled on {} threads: {} logical errors (serial saw {}) — identical per seed",
            pool.threads(),
            pooled,
            serial_errors,
        );
        assert_eq!(pooled, serial_errors, "pooled run must match serial");

        // The engine's built-in telemetry (always on) has been watching the
        // serial run: per-stage latency percentiles straight from `stats()`.
        println!("\n  telemetry summary (serial engine):");
        for line in engine.stats().summary().lines() {
            println!("    {line}");
        }
    }
}
