//! # HERQULES — hardware-efficient machine-learning qubit readout
//!
//! Umbrella crate for the reproduction of *"Scaling Qubit Readout with
//! Hardware Efficient Machine Learning Architectures"* (ISCA 2023). It
//! re-exports every workspace crate under one roof so applications can depend
//! on a single crate:
//!
//! * [`exec`] — deterministic parallel execution runtime (shard pool,
//!   pipeline overlap, RNG stream derivation)
//! * [`sim`] — physics-level readout-trace simulator (dataset substrate)
//! * [`dsp`] — demodulation, boxcar filtering, matched / relaxation matched filters
//! * [`nn`] — minimal dense neural-network library (training + quantized inference)
//! * [`classifiers`] — linear SVM, centroid, and threshold discriminators
//! * [`core`] — the HERQULES discriminator architectures and metrics
//! * [`fpga`] — FPGA resource/latency estimation for readout datapaths
//! * [`qec`] — rotated surface-code simulation and syndrome-cycle timing
//! * [`stream`] — streaming QEC-cycle engine (readout → syndrome → decode
//!   on one batch pipeline)
//! * [`telemetry`] — allocation-free latency histograms, metrics registry
//!   with Prometheus/JSON exporters, and lock-free event tracing
//! * [`nisq`] — noisy state-vector simulation of NISQ benchmark circuits
//!
//! # Quickstart
//!
//! ```
//! use herqles::sim::{ChipConfig, Dataset};
//!
//! let config = ChipConfig::five_qubit_default();
//! let dataset = Dataset::generate(&config, 2, 7);
//! assert_eq!(dataset.shots.len(), 2 * 32);
//! ```
//!
//! See `examples/quickstart.rs` for the end-to-end train → discriminate flow.

pub use fpga_model as fpga;
pub use herqles_core as core;
pub use herqles_exec as exec;
pub use herqles_stream as stream;
pub use herqles_telemetry as telemetry;
pub use nisq_sim as nisq;
pub use readout_classifiers as classifiers;
pub use readout_dsp as dsp;
pub use readout_nn as nn;
pub use readout_sim as sim;
pub use surface_code as qec;
