//! Integration tests for readout-duration reduction (paper §5): trained-once
//! discriminators evaluated at shorter windows.

use herqles::core::designs::DesignKind;
use herqles::core::duration::{
    evaluate_truncated, evaluate_truncated_per_qubit, shortest_saturating_duration, sweep_durations,
};
use herqles::core::trainer::{ReadoutTrainer, TrainerConfig};
use herqles::nn::net::TrainConfig;
use herqles::sim::{ChipConfig, Dataset};

fn setup() -> (Dataset, Vec<usize>, Vec<usize>) {
    let config = ChipConfig::two_qubit_test();
    let dataset = Dataset::generate(&config, 80, 4242);
    let split = dataset.split(0.4, 0.0, 9);
    (dataset, split.train, split.test)
}

fn quick_config() -> TrainerConfig {
    TrainerConfig {
        nn_train: TrainConfig {
            epochs: 40,
            ..TrainerConfig::default().nn_train
        },
        baseline_train: TrainConfig {
            epochs: 4,
            ..TrainerConfig::default().baseline_train
        },
        ..TrainerConfig::default()
    }
}

#[test]
fn accuracy_degrades_gracefully_with_duration() {
    let (dataset, train, test) = setup();
    let mut trainer = ReadoutTrainer::with_config(&dataset, &train, quick_config());
    let disc = trainer.train(DesignKind::MfRmfNn);
    let sweep = sweep_durations(disc.as_ref(), &dataset, &test, &[2, 6, 12, 20]);
    let accs: Vec<f64> = sweep
        .iter()
        .map(|p| p.result.cumulative_accuracy())
        .collect();
    // Longest duration must beat the shortest decisively.
    assert!(accs[3] > accs[0] + 0.02, "no duration benefit: {accs:?}");
    // Mid durations must already be useful (above chance).
    assert!(accs[1] > 0.6, "6-bin accuracy too low: {accs:?}");
}

#[test]
fn shortest_saturating_duration_is_below_full_window() {
    let (dataset, train, test) = setup();
    let mut trainer = ReadoutTrainer::with_config(&dataset, &train, quick_config());
    let disc = trainer.train(DesignKind::Mf);
    let point = shortest_saturating_duration(disc.as_ref(), &dataset, &test, 0.02);
    assert!(point.bins < dataset.config.n_bins(), "no saturation found");
    let full = evaluate_truncated(disc.as_ref(), &dataset, &test, dataset.config.n_bins())
        .expect("mf supports truncation");
    assert!(
        point.result.cumulative_accuracy() >= full.cumulative_accuracy() - 0.02,
        "saturating point violates tolerance"
    );
}

#[test]
fn per_qubit_budgets_only_affect_their_qubit_substantially() {
    let (dataset, train, test) = setup();
    let mut trainer = ReadoutTrainer::with_config(&dataset, &train, quick_config());
    let disc = trainer.train(DesignKind::Mf);
    let full = evaluate_truncated_per_qubit(disc.as_ref(), &dataset, &test, &[20, 20]).unwrap();
    let cut0 = evaluate_truncated_per_qubit(disc.as_ref(), &dataset, &test, &[3, 20]).unwrap();
    // Qubit 1 keeps its full-duration accuracy when only qubit 0 is cut
    // (the mf design has no cross-qubit coupling).
    assert!(
        (cut0.qubit_accuracy(1) - full.qubit_accuracy(1)).abs() < 0.01,
        "cutting qubit 0 changed qubit 1: {} vs {}",
        cut0.qubit_accuracy(1),
        full.qubit_accuracy(1)
    );
    // Qubit 0 must lose accuracy.
    assert!(cut0.qubit_accuracy(0) < full.qubit_accuracy(0) + 1e-9);
}

#[test]
fn baseline_cannot_run_truncated_but_filters_can() {
    let (dataset, train, test) = setup();
    let mut trainer = ReadoutTrainer::with_config(&dataset, &train, quick_config());
    let baseline = trainer.train(DesignKind::BaselineFnn);
    assert!(evaluate_truncated(baseline.as_ref(), &dataset, &test, 10).is_none());
    for kind in [
        DesignKind::Mf,
        DesignKind::MfSvm,
        DesignKind::MfNn,
        DesignKind::Centroid,
    ] {
        let disc = trainer.train(kind);
        assert!(
            evaluate_truncated(disc.as_ref(), &dataset, &test, 10).is_some(),
            "{kind} must support truncation"
        );
    }
}
