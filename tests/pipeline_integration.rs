//! End-to-end integration: simulate → demodulate → train every design →
//! evaluate, across `readout-sim`, `readout-dsp`, `readout-nn`,
//! `readout-classifiers`, and `herqles-core`.

use herqles::core::designs::DesignKind;
use herqles::core::metrics::evaluate;
use herqles::core::trainer::{ReadoutTrainer, TrainerConfig};
use herqles::nn::net::TrainConfig;
use herqles::sim::{ChipConfig, Dataset};

fn quick_config() -> TrainerConfig {
    TrainerConfig {
        nn_train: TrainConfig {
            epochs: 40,
            ..TrainerConfig::default().nn_train
        },
        baseline_train: TrainConfig {
            epochs: 8,
            ..TrainerConfig::default().baseline_train
        },
        ..TrainerConfig::default()
    }
}

#[test]
fn all_designs_train_and_discriminate_above_chance() {
    let config = ChipConfig::two_qubit_test();
    let dataset = Dataset::generate(&config, 60, 1234);
    let split = dataset.split(0.5, 0.0, 5);
    let mut trainer = ReadoutTrainer::with_config(&dataset, &split.train, quick_config());
    for kind in DesignKind::ALL {
        let disc = trainer.train(kind);
        let result = evaluate(disc.as_ref(), &dataset, &split.test);
        assert!(
            result.state_accuracy() > 0.5,
            "{kind}: state accuracy {} too low",
            result.state_accuracy()
        );
        assert_eq!(disc.name(), kind.label());
        assert_eq!(disc.n_qubits(), 2);
    }
}

#[test]
fn filter_designs_beat_centroid_on_well_separated_chip() {
    let config = ChipConfig::two_qubit_test();
    let dataset = Dataset::generate(&config, 80, 99);
    let split = dataset.split(0.5, 0.0, 2);
    let mut trainer = ReadoutTrainer::with_config(&dataset, &split.train, quick_config());
    let centroid = evaluate(
        trainer.train(DesignKind::Centroid).as_ref(),
        &dataset,
        &split.test,
    );
    let mf = evaluate(
        trainer.train(DesignKind::Mf).as_ref(),
        &dataset,
        &split.test,
    );
    // The MF uses temporal structure the centroid throws away; it must not
    // be meaningfully worse. The margin covers sampling noise at this shot
    // count (recalibrated for the vendored RNG stream).
    assert!(
        mf.cumulative_accuracy() >= centroid.cumulative_accuracy() - 0.02,
        "mf {} vs centroid {}",
        mf.cumulative_accuracy(),
        centroid.cumulative_accuracy()
    );
}

#[test]
fn metrics_are_internally_consistent() {
    let config = ChipConfig::two_qubit_test();
    let dataset = Dataset::generate(&config, 40, 7);
    let split = dataset.split(0.5, 0.0, 1);
    let mut trainer = ReadoutTrainer::with_config(&dataset, &split.train, quick_config());
    let disc = trainer.train(DesignKind::Mf);
    let result = evaluate(disc.as_ref(), &dataset, &split.test);

    // State accuracy cannot exceed any per-qubit accuracy.
    for q in 0..2 {
        assert!(result.state_accuracy() <= result.qubit_accuracy(q) + 1e-12);
    }
    // Misclassification counts must equal accuracy deficits.
    for q in 0..2 {
        let (ge, ee) = result.misclassification_counts(q);
        let errors = ge + ee;
        let expected = ((1.0 - result.qubit_accuracy(q)) * result.n_shots() as f64).round();
        assert_eq!(errors as f64, expected, "qubit {q}");
    }
    // Cumulative accuracy is between min and max per-qubit accuracy.
    let accs = result.per_qubit_accuracy();
    let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = accs.iter().cloned().fold(0.0, f64::max);
    let cum = result.cumulative_accuracy();
    assert!(cum >= min - 1e-12 && cum <= max + 1e-12);
}

#[test]
fn relaxation_labeling_tracks_ground_truth() {
    // Algorithm 1 runs unsupervised; the simulator's ground truth lets us
    // check that the traces it flags are enriched in true relaxation events.
    use herqles::core::relabel::identify_relaxation_traces;
    use herqles::dsp::Demodulator;
    use herqles::sim::trace::IqTrace;

    let config = ChipConfig::two_qubit_test();
    let dataset = Dataset::generate(&config, 400, 21);
    let demod = Demodulator::new(&config);
    let q = 1; // two_qubit_test keeps original qubits 1 and 3 (well separated)

    let mut ground: Vec<IqTrace> = Vec::new();
    let mut excited: Vec<IqTrace> = Vec::new();
    let mut excited_truth: Vec<bool> = Vec::new();
    for shot in &dataset.shots {
        let tr = demod.demodulate_qubit(&shot.raw, q);
        if shot.prepared.qubit(q) {
            excited.push(tr);
            excited_truth.push(shot.truth.relaxation_time_s[q].is_some());
        } else {
            ground.push(tr);
        }
    }
    let g: Vec<&IqTrace> = ground.iter().collect();
    let e: Vec<&IqTrace> = excited.iter().collect();
    let labels = identify_relaxation_traces(&g, &e);
    assert!(
        !labels.relaxation_indices.is_empty(),
        "no relaxations found"
    );

    let flagged_true = labels
        .relaxation_indices
        .iter()
        .filter(|&&i| excited_truth[i])
        .count();
    let precision = flagged_true as f64 / labels.relaxation_indices.len() as f64;
    let base_rate =
        excited_truth.iter().filter(|&&t| t).count() as f64 / excited_truth.len() as f64;
    assert!(
        precision > 3.0 * base_rate,
        "labeling precision {precision:.2} vs base rate {base_rate:.2}"
    );
}

#[test]
fn trained_network_shape_matches_fpga_model() {
    use herqles::core::designs::NnDiscriminator;
    use herqles::fpga::NetworkShape;
    let config = ChipConfig::two_qubit_test();
    let dataset = Dataset::generate(&config, 30, 3);
    let split = dataset.split(0.5, 0.0, 0);
    let mut trainer = ReadoutTrainer::with_config(&dataset, &split.train, quick_config());
    let disc = trainer.train(DesignKind::MfRmfNn);
    // Downcast via the known concrete path: rebuild the expected shape.
    let expected = NetworkShape::herqules_head(2, true);
    assert_eq!(expected.sizes(), &[4, 8, 16, 8, 4]);
    // The discriminator trained with the same layer convention.
    let _ = disc;
    // The FPGA cost model and the trained head compute their layer sizes
    // independently (fpga-model does not depend on herqles-core); pin the
    // two formulas — including the 8-unit hidden-width floor — to each
    // other so resource estimates cannot silently drift from the shape
    // that actually trains.
    for n_qubits in 1..=6 {
        for with_rmf in [false, true] {
            let f = if with_rmf { 2 * n_qubits } else { n_qubits };
            assert_eq!(
                NetworkShape::herqules_head(n_qubits, with_rmf).sizes(),
                NnDiscriminator::layer_sizes(f, n_qubits).as_slice(),
                "shape mismatch for n_qubits={n_qubits}, rmf={with_rmf}"
            );
        }
    }
}
