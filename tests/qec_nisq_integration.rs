//! Integration tests for the downstream-impact studies: surface-code logical
//! error rates (Fig. 13), syndrome cycle time (Fig. 14b), and NISQ benchmark
//! fidelity (Fig. 12).

use herqles::nisq::benchmarks::{alternating_secret, bernstein_vazirani, ghz};
use herqles::nisq::fidelity::{success_probability, tvd_fidelity};
use herqles::nisq::sim::{counts_to_distribution, run_ideal, run_noisy};
use herqles::nisq::NoiseModel;
use herqles::qec::{estimate_logical_error_rate, CycleTimes, GateSet, LogicalErrorConfig};

#[test]
fn readout_error_degrades_logical_error_rate() {
    // The Fig. 13 mechanism at distance 5 (cheaper than 7 for CI).
    let rate = |er: f64| {
        estimate_logical_error_rate(&LogicalErrorConfig {
            distance: 5,
            rounds: 5,
            data_error_prob: 0.012,
            meas_error_prob: er,
            blocks: 8_000,
            seed: 31,
        })
    };
    let clean = rate(0.0);
    let noisy = rate(0.03);
    assert!(
        noisy > 1.5 * clean.max(1e-5),
        "readout error had no effect: {clean} vs {noisy}"
    );
}

#[test]
fn distance_suppresses_logical_errors_below_threshold() {
    let rate = |d: usize| {
        estimate_logical_error_rate(&LogicalErrorConfig {
            distance: d,
            rounds: d,
            data_error_prob: 0.008,
            meas_error_prob: 0.008,
            blocks: 8_000,
            seed: 17,
        })
    };
    assert!(rate(7) < rate(3), "no distance suppression");
}

#[test]
fn faster_readout_shortens_cycles_more_on_faster_gates() {
    let g = CycleTimes::SURFACE17.normalized_duration(&GateSet::GOOGLE, 0.75);
    let i = CycleTimes::SURFACE17.normalized_duration(&GateSet::IBM, 0.75);
    assert!(g < i && i < 1.0);
    // The paper's headline numbers to 1 % absolute.
    assert!((g - 0.795).abs() < 0.01);
    assert!((i - 0.836).abs() < 0.01);
}

#[test]
fn better_readout_improves_bv_fidelity() {
    // The Fig. 12 comparison on bv-10: HERQULES-level readout error must
    // produce a higher success probability than baseline-level.
    let n = 10;
    let secret = alternating_secret(n);
    let circuit = bernstein_vazirani(n, secret);
    let run = |readout: f64, seed: u64| {
        let counts = run_noisy(&circuit, &NoiseModel::ibm_hanoi_like(readout), 1200, seed);
        success_probability(&counts, secret)
    };
    let base = run(1.0 - 0.9122, 1);
    let herq = run(1.0 - 0.9266, 2);
    assert!(
        herq > base,
        "herqules readout did not help: {base:.3} vs {herq:.3}"
    );
    // bv-10 normalized fidelity in the paper is ≈1.17; ours must at least
    // land in (1.0, 1.6).
    let ratio = herq / base;
    assert!(ratio < 1.6, "improbable normalized fidelity {ratio}");
}

#[test]
fn better_readout_improves_ghz_tvd_fidelity() {
    let circuit = ghz(5);
    let ideal = run_ideal(&circuit).probabilities();
    let run = |readout: f64, seed: u64| {
        let counts = run_noisy(&circuit, &NoiseModel::ibm_hanoi_like(readout), 2500, seed);
        tvd_fidelity(&ideal, &counts_to_distribution(&counts, 5))
    };
    let base = run(1.0 - 0.9122, 3);
    let herq = run(1.0 - 0.9266, 4);
    assert!(herq > base, "{base:.3} vs {herq:.3}");
}

#[test]
fn noiseless_execution_is_ideal() {
    let circuit = ghz(4);
    let counts = run_noisy(&circuit, &NoiseModel::noiseless(), 2000, 7);
    let dist = counts_to_distribution(&counts, 4);
    // Only the two cat components may appear.
    for (idx, p) in dist.iter().enumerate() {
        if idx == 0 || idx == 15 {
            assert!((p - 0.5).abs() < 0.05, "outcome {idx}: {p}");
        } else {
            assert_eq!(*p, 0.0, "impossible outcome {idx} appeared");
        }
    }
}
