//! Cross-crate property-based tests (proptest) on the core invariants.

use herqles::classifiers::ThresholdDiscriminator;
use herqles::dsp::boxcar_filter;
use herqles::dsp::filters::MatchedFilter;
use herqles::nisq::fidelity::total_variation_distance;
use herqles::nisq::{Circuit, Gate};
use herqles::nn::loss::softmax;
use herqles::nn::matrix::Matrix;
use herqles::qec::decoder::decode_block;
use herqles::qec::syndrome::{DetectionEvent, SyndromeBlock};
use herqles::qec::RotatedSurfaceCode;
use herqles::sim::trace::{BasisState, IqTrace};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0..100.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matched_filter_output_is_linear(
        env_i in finite_vec(8),
        env_q in finite_vec(8),
        tr_i in finite_vec(8),
        tr_q in finite_vec(8),
        k in -5.0..5.0f64,
    ) {
        let mf = MatchedFilter::from_envelope(IqTrace::new(env_i, env_q));
        let tr = IqTrace::new(tr_i.clone(), tr_q.clone());
        let scaled = IqTrace::new(
            tr_i.iter().map(|x| k * x).collect(),
            tr_q.iter().map(|x| k * x).collect(),
        );
        let lhs = mf.apply(&scaled);
        let rhs = k * mf.apply(&tr);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn matched_filter_truncation_is_prefix_sum(
        env_i in finite_vec(10),
        tr_i in finite_vec(10),
        bins in 0usize..12,
    ) {
        let mf = MatchedFilter::from_envelope(IqTrace::new(env_i, vec![0.0; 10]));
        let tr = IqTrace::new(tr_i, vec![0.0; 10]);
        let direct = mf.apply_truncated(&tr, bins);
        let via_filter = mf.truncated(bins.min(10)).apply(&tr);
        prop_assert!((direct - via_filter).abs() < 1e-9);
    }

    #[test]
    fn boxcar_output_is_within_input_range(xs in finite_vec(16), w in 1usize..20) {
        let tr = IqTrace::new(xs.clone(), vec![0.0; 16]);
        let out = boxcar_filter(&tr, w);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &v in out.i() {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn basis_state_flips_are_involutive(bits in 0u32..(1 << 16), q in 0usize..16) {
        let s = BasisState::new(bits);
        prop_assert_eq!(s.flipped(q).flipped(q), s);
        prop_assert_eq!(s.flipped(q).hamming_distance(s), 1);
    }

    #[test]
    fn matrix_transpose_respects_product(
        a in finite_vec(12),
        b in finite_vec(20),
    ) {
        // (A·B)ᵀ = Bᵀ·Aᵀ for A 3×4, B 4×5.
        let a = Matrix::from_vec(3, 4, a);
        let b = Matrix::from_vec(4, 5, b);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.sub(&rhs).frobenius_norm() < 1e-6);
    }

    #[test]
    fn softmax_rows_are_distributions(vals in finite_vec(12)) {
        let logits = Matrix::from_vec(3, 4, vals);
        let p = softmax(&logits);
        for r in 0..3 {
            let sum: f64 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn threshold_training_minimizes_empirical_error(
        a in proptest::collection::vec(-10.0..10.0f64, 1..20),
        b in proptest::collection::vec(-10.0..10.0f64, 1..20),
    ) {
        let th = ThresholdDiscriminator::train(&a, &b);
        let acc = th.accuracy(&a, &b);
        // Brute force over all midpoints and orientations.
        let mut values: Vec<f64> = a.iter().chain(&b).cloned().collect();
        values.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut best = 0.0f64;
        let mut cuts = vec![values[0] - 1.0];
        cuts.extend(values.windows(2).map(|w| 0.5 * (w[0] + w[1])));
        cuts.push(values[values.len() - 1] + 1.0);
        for cut in cuts {
            for above in [true, false] {
                let correct = a.iter().filter(|&&v| (v > cut) == above).count()
                    + b.iter().filter(|&&v| (v > cut) != above).count();
                best = best.max(correct as f64 / (a.len() + b.len()) as f64);
            }
        }
        prop_assert!(acc >= best - 1e-9, "trained {acc} < brute-force {best}");
    }

    #[test]
    fn state_vector_norm_is_preserved_by_random_circuits(
        seed in 0u64..1000,
        gates in proptest::collection::vec((0usize..6, 0usize..3, -3.0..3.0f64), 1..30),
    ) {
        let _ = seed;
        let mut c = Circuit::new(3);
        for (kind, q, theta) in gates {
            let q2 = (q + 1) % 3;
            match kind {
                0 => { c.h(q); }
                1 => { c.x(q); }
                2 => { c.rz(q, theta); }
                3 => { c.rx(q, theta); }
                4 => { c.cx(q, q2); }
                _ => { c.cp(q, q2, theta); }
            }
        }
        let state = herqles::nisq::sim::run_ideal(&c);
        prop_assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_space_time_error_is_always_corrected(
        q in 0usize..25,
    ) {
        // Any single data error on the d=5 code with perfect syndromes must
        // decode without a logical error.
        let code = RotatedSurfaceCode::new(5);
        let mut errors = vec![false; code.n_data()];
        errors[q] = true;
        let mut events = Vec::new();
        for (s, stab) in code.stabilizers().iter().enumerate() {
            let parity = stab.support.iter().filter(|&&qq| errors[qq]).count() % 2 == 1;
            if parity {
                events.push(DetectionEvent { stab: s, round: 0 });
            }
        }
        let block = SyndromeBlock { events, final_errors: errors, rounds: 1 };
        let out = decode_block(&code, &block);
        prop_assert!(!out.logical_error, "single error on qubit {q} mis-decoded");
    }

    #[test]
    fn tvd_is_a_bounded_metric(
        p in proptest::collection::vec(0.0..1.0f64, 8),
        q in proptest::collection::vec(0.0..1.0f64, 8),
    ) {
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum::<f64>().max(1e-12);
            v.iter().map(|x| x / s).collect()
        };
        let p = norm(&p);
        let q = norm(&q);
        let d = total_variation_distance(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
        let d_rev = total_variation_distance(&q, &p);
        prop_assert!((d - d_rev).abs() < 1e-12);
        prop_assert!(total_variation_distance(&p, &p) < 1e-12);
    }

    #[test]
    fn gate_application_is_deterministic(
        q in 0usize..3,
        theta in -3.0..3.0f64,
    ) {
        let mut c = Circuit::new(3);
        c.h(q).rz(q, theta).push(Gate::Y(q));
        let a = herqles::nisq::sim::run_ideal(&c);
        let b = herqles::nisq::sim::run_ideal(&c);
        prop_assert_eq!(a.amplitudes().len(), b.amplitudes().len());
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert!((*x - *y).norm_sqr() < 1e-20);
        }
    }
}
