//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API used by this workspace's
//! property tests: range/tuple/`collection::vec` strategies, `prop_map`,
//! `any::<bool>()`, the `proptest!` macro with `#![proptest_config(..)]`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Each test runs `cases` deterministic random cases (seeded from the test
//! name), panicking on the first failure with the case number so a failure is
//! reproducible. Unlike real proptest there is **no shrinking** — failing
//! inputs are reported as generated.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The value-generation trait (a radically simplified `proptest::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies over explicit option sets.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }

    /// Uniformly selects one of the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// Deterministic per-test RNG: FNV-1a over the test path, mixed per case.
#[doc(hidden)]
pub fn __case_rng(test_path: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Outcome of one property case.
#[doc(hidden)]
#[derive(Debug)]
pub enum CaseResult {
    /// Assertions held.
    Pass,
    /// `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Property-test entry macro; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut case: u32 = 0;
            let mut executed: u32 = 0;
            // Cap on rejection-driven retries so a bad prop_assume cannot spin.
            let max_attempts = config.cases.saturating_mul(16).max(1024);
            while executed < config.cases && case < max_attempts {
                let mut rng = $crate::__case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                case += 1;
                let outcome: $crate::CaseResult =
                    $crate::__proptest_case! { rng = rng; pending = [$($args)*]; body = $body };
                if let $crate::CaseResult::Pass = outcome {
                    executed += 1;
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Peel `pat in expr,` pairs off the front of the argument list.
    (rng = $rng:ident; pending = [$pat:pat in $strat:expr, $($rest:tt)*]; body = $body:block) => {{
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_case! { rng = $rng; pending = [$($rest)*]; body = $body }
    }};
    // Final `pat in expr` with no trailing comma.
    (rng = $rng:ident; pending = [$pat:pat in $strat:expr]; body = $body:block) => {{
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_case! { rng = $rng; pending = []; body = $body }
    }};
    (rng = $rng:ident; pending = []; body = $body:block) => {{
        // The closure gives prop_assume! an early exit (Reject) while
        // prop_assert! panics through it, failing the #[test].
        let run = || -> $crate::CaseResult {
            $body
            #[allow(unreachable_code)]
            $crate::CaseResult::Pass
        };
        run()
    }};
}

/// Asserts a condition inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Rejects the current case (it is regenerated, not failed) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseResult::Reject;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::CaseResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0..1.0f64, 2.0..3.0f64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -5.0..5.0f64, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_obey_spec(
            fixed in collection::vec(0u32..10, 4),
            ranged in collection::vec(0.0..1.0f64, 1..7),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..7).contains(&ranged.len()));
        }

        #[test]
        fn tuples_and_map_compose(p in pair().prop_map(|(a, b)| a + b), flag in any::<bool>()) {
            prop_assert!((2.0..4.0).contains(&p));
            let doubled = if flag { p * 2.0 } else { p };
            prop_assert!(doubled >= p);
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }
}
