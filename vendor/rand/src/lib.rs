//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) slice of the `rand` 0.10 API the workspace uses:
//!
//! * [`Rng`] — the core source trait (`next_u64`);
//! * [`RngExt`] — convenience sampling (`random`, `random_range`,
//!   `random_bool`), blanket-implemented for every [`Rng`];
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed` construction;
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded through
//!   SplitMix64;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The generator is *not* bit-compatible with upstream `rand`'s `StdRng`
//! (which is ChaCha-based); everything in this workspace only relies on
//! determinism-per-seed and statistical quality, both of which xoshiro256++
//! provides. Do not use this crate for cryptographic purposes.

use std::ops::Range;

/// A source of random bits.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformSampled: Copy + PartialOrd {
    /// Draws a uniform value in `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Rejection-free (modulo-bias-corrected) uniform integer in `[0, span)`.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's rejection method: bias-free without division in the hot path.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * span as u128) >> 64) as u64;
        let lo = x.wrapping_mul(span);
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl UniformSampled for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample from an empty range");
        lo + (hi - lo) * f64::random(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniform value of type `T` (`[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: UniformSampled>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        f64::random(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Rng, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++, seeded via SplitMix64.
    ///
    /// Fast, passes BigCrush, and fully deterministic per seed — which is all
    /// the simulator and trainers require.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngExt};

    /// In-place random permutation and element choice for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(3..10usize);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
