//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` / `iter_batched`,
//! `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock runner: a short
//! warm-up, then timed batches until a time budget is spent, reporting the
//! per-iteration mean and throughput to stdout. No statistics, plots, or
//! baselines; for rigorous numbers swap in real criterion on a networked
//! machine.

use std::time::{Duration, Instant};

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (shots, samples, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Hint for how expensive `iter_batched` setup values are; the runner only
/// uses it to size timing batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Cheap inputs: large timing batches.
    SmallInput,
    /// Expensive inputs: one setup per measured call.
    LargeInput,
    /// Re-create the input every iteration.
    PerIteration,
}

/// Per-invocation timing driver handed to bench closures.
pub struct Bencher<'a> {
    measured: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    samples: usize,
}

impl Bencher<'_> {
    /// Times `routine`, called in batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: aim for samples of >= ~1 ms.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u64;
        let per_sample = per_sample.min(self.iters_per_sample);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.measured.push(start.elapsed() / per_sample as u32);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.measured.push(start.elapsed());
        }
    }
}

fn mean(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    durations.iter().sum::<Duration>() / durations.len() as u32
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    let m = mean(samples);
    let per_iter = m.as_secs_f64();
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            println!(
                "bench: {name:<40} {m:>12.3?}/iter   {:>12.0} elem/s",
                n as f64 / per_iter
            );
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            println!(
                "bench: {name:<40} {m:>12.3?}/iter   {:>12.0} B/s",
                n as f64 / per_iter
            );
        }
        _ => println!("bench: {name:<40} {m:>12.3?}/iter"),
    }
}

/// Top-level bench context (a drastically simplified `criterion::Criterion`).
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut measured = Vec::new();
        let mut b = Bencher {
            measured: &mut measured,
            iters_per_sample: 1_000_000,
            samples: self.samples,
        };
        f(&mut b);
        report(name, &measured, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
            samples: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput spec.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(1));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut measured = Vec::new();
        let mut b = Bencher {
            measured: &mut measured,
            iters_per_sample: 1_000_000,
            samples: self.samples.unwrap_or(self.parent.samples),
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name),
            &measured,
            self.throughput,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a bench entry point running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().bench_function("count", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_report_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
